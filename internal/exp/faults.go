package exp

import (
	"context"
	"fmt"
	"io"

	"mube/internal/constraint"
	"mube/internal/fault"
	"mube/internal/opt"
)

// FaultsRow is one failure rate's outcome: how much of the universe survived
// acquisition and how much Q(S) the solver could still extract from it.
type FaultsRow struct {
	// Rate is the injected per-attempt failure probability.
	Rate float64
	// Plan is the canonical fault-plan string.
	Plan string
	// Universe is the number of sources that joined the universe.
	Universe int
	// Degraded and Dropped count acquisition outcomes (0 for a clean run).
	Degraded int
	Dropped  int
	// Quality is Q(S) of the solve over the degraded universe.
	Quality float64
	// Feasible reports whether the solution satisfied the hard constraints.
	Feasible bool
	// Status is how the solve ended.
	Status opt.Status
	// Evals is the evaluation count the solve consumed.
	Evals int
}

// FaultRates are the failure rates the robustness experiment sweeps.
var FaultRates = []float64{0, 0.1, 0.3}

// Faults measures graceful degradation: the base universe is re-acquired
// under increasing probe failure rates and solved with the standard objective
// each time. The paper's §4 fallback predicts Q(S) declines smoothly — data
// QEFs lose the degraded sources' synopses while schema QEFs keep scoring —
// rather than the pipeline failing outright.
func Faults(sc Scale) ([]FaultsRow, error) {
	rows := make([]FaultsRow, 0, len(FaultRates))
	for _, rate := range FaultRates {
		fsc := sc
		fsc.Faults = nil
		if rate > 0 {
			fsc.Faults = &fault.Plan{Seed: sc.Seed, Rate: rate}
		}
		res, err := fsc.Universe(sc.BaseUniverse)
		if err != nil {
			return nil, err
		}
		health, err := fsc.Health(sc.BaseUniverse)
		if err != nil {
			return nil, err
		}
		m := sc.ChooseDefault
		if n := res.Universe.Len(); m > n {
			m = n
		}
		p, err := fsc.Problem(res, m, constraint.Set{})
		if err != nil {
			return nil, err
		}
		sol, err := fsc.Solver(sc.BaseUniverse).Solve(context.Background(), p, fsc.Options(sc.Seed))
		if err != nil {
			return nil, err
		}
		row := FaultsRow{
			Rate:     rate,
			Plan:     fsc.plan().String(),
			Universe: res.Universe.Len(),
			Quality:  sol.Quality,
			Feasible: p.Feasible(sol.IDs),
			Status:   sol.Status,
			Evals:    sol.Evals,
		}
		if health != nil {
			row.Degraded = health.Degraded
			row.Dropped = health.Dropped
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFaults prints the graceful-degradation sweep.
func RenderFaults(w io.Writer, rows []FaultsRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "fail_rate\tuniverse\tdegraded\tdropped\tquality\tfeasible\tstatus\tevals")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f%%\t%d\t%d\t%d\t%.4f\t%v\t%s\t%d\n",
			r.Rate*100, r.Universe, r.Degraded, r.Dropped, r.Quality, r.Feasible, r.Status, r.Evals)
	}
	return tw.Flush()
}
