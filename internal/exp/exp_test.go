package exp

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mube/internal/bamm"
	"mube/internal/pcsa"
	"mube/internal/testutil"
)

// micro returns a very small scale for unit tests (sub-second per
// experiment).
func micro() Scale {
	return Scale{
		Name:          "micro",
		DataFactor:    0.002,
		UniverseSizes: []int{60, 80},
		ChooseCounts:  []int{5, 10},
		BaseUniverse:  80,
		ChooseDefault: 8,
		MaxIters:      10,
		Patience:      5,
		Sig:           pcsa.Config{NumMaps: 64},
		Seed:          1,
		Repeats:       1,
	}
}

func TestScalePresets(t *testing.T) {
	full := Full()
	if full.BaseUniverse != 200 || full.ChooseDefault != 20 || !testutil.AlmostEqual(full.DataFactor, 1) {
		t.Errorf("Full() = %+v, want the paper's 200/20/1", full)
	}
	if len(full.UniverseSizes) != 7 || full.UniverseSizes[0] != 100 || full.UniverseSizes[6] != 700 {
		t.Errorf("Full universe sizes = %v", full.UniverseSizes)
	}
	if len(full.ChooseCounts) != 5 || full.ChooseCounts[0] != 10 || full.ChooseCounts[4] != 50 {
		t.Errorf("Full choose counts = %v", full.ChooseCounts)
	}
	quick := Quick()
	if quick.DataFactor >= full.DataFactor {
		t.Error("Quick() should shrink data")
	}
}

func TestUniverseCaching(t *testing.T) {
	sc := micro()
	a, err := sc.Universe(60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Universe(60)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("universe not cached")
	}
	c, err := sc.Universe(80)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different sizes share a cache entry")
	}
	ma, err := sc.Matcher(a)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := sc.Matcher(a)
	if err != nil {
		t.Fatal(err)
	}
	if ma != mb {
		t.Error("matcher not cached")
	}
}

func TestConstraintConfigs(t *testing.T) {
	ccs := ConstraintConfigs()
	if len(ccs) != 5 {
		t.Fatalf("constraint configs = %d, want 5 (paper Figs 5–7)", len(ccs))
	}
	if ccs[0].Label != "none" || ccs[4].Label != "5C+2G" || ccs[4].NumGAs != 2 {
		t.Errorf("configs = %+v", ccs)
	}
}

func TestBuildConstraints(t *testing.T) {
	sc := micro()
	res, err := sc.Universe(80)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for _, cc := range ConstraintConfigs() {
		cons, err := BuildConstraints(res, cc, 20, r)
		if err != nil {
			t.Fatalf("%s: %v", cc.Label, err)
		}
		if len(cons.Sources) != cc.NumSources || len(cons.GAs) != cc.NumGAs {
			t.Errorf("%s: got %d sources, %d GAs", cc.Label, len(cons.Sources), len(cons.GAs))
		}
		if err := cons.Validate(res.Universe); err != nil {
			t.Errorf("%s: invalid constraints: %v", cc.Label, err)
		}
		if req := cons.RequiredSources(); len(req) > 20 {
			t.Errorf("%s: %d required sources exceed m", cc.Label, len(req))
		}
		// Source constraints must be conformant sources.
		conformant := map[int]bool{}
		for _, id := range res.Conformant {
			conformant[int(id)] = true
		}
		for _, id := range cons.Sources {
			if !conformant[int(id)] {
				t.Errorf("%s: constraint source %d not conformant", cc.Label, id)
			}
		}
		// GA constraints must be concept-pure (accurate matchings).
		for _, g := range cons.GAs {
			concept := -1
			for _, ref := range g.Refs() {
				ci, ok := bamm.ConceptOf(res.Universe.AttrName(ref))
				if !ok {
					t.Errorf("%s: GA constraint has off-domain attribute", cc.Label)
					continue
				}
				if concept == -1 {
					concept = ci
				} else if ci != concept {
					t.Errorf("%s: GA constraint mixes concepts", cc.Label)
				}
			}
			if g.Size() < 2 || g.Size() > 5 {
				t.Errorf("%s: GA constraint size %d outside [2,5]", cc.Label, g.Size())
			}
		}
	}
}

func TestBuildConstraintsRespectsSmallM(t *testing.T) {
	sc := micro()
	res, err := sc.Universe(80)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	cons, err := BuildConstraints(res, ConstraintConfig{Label: "5C+2G", NumSources: 5, NumGAs: 2}, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	if req := cons.RequiredSources(); len(req) > 8 {
		t.Errorf("required sources %d exceed m=8", len(req))
	}
}

func TestFig5Shape(t *testing.T) {
	rows, err := Fig5(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*5 {
		t.Fatalf("rows = %d, want sizes × configs = 10", len(rows))
	}
	for _, r := range rows {
		if r.Millis <= 0 || r.Quality <= 0 || r.Quality > 1 {
			t.Errorf("row %+v out of range", r)
		}
	}
	var buf bytes.Buffer
	if err := RenderFig5(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "universe") {
		t.Error("render missing header")
	}
}

func TestFig67Shape(t *testing.T) {
	sc := micro()
	rows, err := Fig67(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sc.ChooseCounts)*5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Quality with more sources to choose should not collapse: compare the
	// unconstrained rows (paper Fig 7: quality increases with m).
	var qSmall, qLarge float64
	for _, r := range rows {
		if r.Config != "none" {
			continue
		}
		if r.Choose == sc.ChooseCounts[0] {
			qSmall = r.Quality
		}
		if r.Choose == sc.ChooseCounts[len(sc.ChooseCounts)-1] {
			qLarge = r.Quality
		}
	}
	if qLarge+0.05 < qSmall {
		t.Errorf("quality dropped sharply with m: %v → %v", qSmall, qLarge)
	}
	var buf bytes.Buffer
	if err := RenderFig67(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 weight steps", len(rows))
	}
	// Cardinality at w=1.0 must be at least that at w=0.1 (paper Fig 8:
	// increasing the weight biases toward high-cardinality solutions).
	first, last := rows[0], rows[len(rows)-1]
	if last.SolutionCard < first.SolutionCard {
		t.Errorf("cardinality decreased across sweep: %d → %d", first.SolutionCard, last.SolutionCard)
	}
	var buf bytes.Buffer
	if err := RenderFig8(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Shape(t *testing.T) {
	sc := micro()
	rows, err := Table1(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sc.ChooseCounts) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FalseGAs != 0 {
			t.Errorf("m=%d: %d false GAs (paper: none)", r.Choose, r.FalseGAs)
		}
		if r.TrueGAs < 1 || r.TrueGAs > bamm.NumConcepts {
			t.Errorf("m=%d: TrueGAs = %d", r.Choose, r.TrueGAs)
		}
		if r.AttrsInTrueGAs < r.TrueGAs*2 {
			t.Errorf("m=%d: attrs %d below 2×TrueGAs", r.Choose, r.AttrsInTrueGAs)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestPCSAExperiment(t *testing.T) {
	res, err := PCSA(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.WorstErr > 0.25 {
		t.Errorf("worst error %.1f%% implausibly high for 128 maps", 100*res.WorstErr)
	}
	if res.MeanErr <= 0 {
		t.Error("mean error should be positive (estimates are approximate)")
	}
	var buf bytes.Buffer
	if err := RenderPCSA(&buf, res); err != nil {
		t.Fatal(err)
	}
}

func TestSensitivityExperiment(t *testing.T) {
	res, err := Sensitivity(micro())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials < 5 {
		t.Errorf("trials = %d", res.Trials)
	}
	if res.MeanGAChanges < 0 || res.MeanSourceChanges < 0 {
		t.Errorf("negative means: %+v", res)
	}
	var buf bytes.Buffer
	if err := RenderSensitivity(&buf, res); err != nil {
		t.Fatal(err)
	}
}

func TestSolversExperiment(t *testing.T) {
	rows, err := Solvers(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Solver != "tabu" {
		t.Errorf("first solver = %s", rows[0].Solver)
	}
	var tabuQ, randomQ float64
	for _, r := range rows {
		if r.Quality <= 0 || r.Quality > 1 {
			t.Errorf("%s: quality %v", r.Solver, r.Quality)
		}
		switch r.Solver {
		case "tabu":
			tabuQ = r.Quality
		case "random":
			randomQ = r.Quality
		}
	}
	if tabuQ+1e-9 < randomQ {
		t.Errorf("tabu (%.4f) below random (%.4f) at equal budget", tabuQ, randomQ)
	}
	var buf bytes.Buffer
	if err := RenderSolvers(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceExperiment(t *testing.T) {
	rows, err := Convergence(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no convergence rows")
	}
	seen := map[string]bool{}
	lastBest := map[string]float64{}
	for _, r := range rows {
		seen[r.Solver] = true
		if r.BestQ < 0 || r.BestQ > 1 {
			t.Errorf("%s iter %d: best_q %v out of [0,1]", r.Solver, r.Iter, r.BestQ)
		}
		// best_q is a running maximum: it can never decrease along a curve.
		if prev, ok := lastBest[r.Solver]; ok && r.BestQ+1e-12 < prev {
			t.Errorf("%s: best_q decreased %v -> %v", r.Solver, prev, r.BestQ)
		}
		lastBest[r.Solver] = r.BestQ
	}
	for _, want := range []string{"tabu", "sls", "anneal", "pso", "random"} {
		if !seen[want] {
			t.Errorf("no convergence curve for %s", want)
		}
	}
	var buf bytes.Buffer
	if err := RenderConvergence(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "best_q") {
		t.Errorf("render missing header:\n%s", buf.String())
	}
}

func TestCheckpoints(t *testing.T) {
	if got := checkpoints(0); got != nil {
		t.Errorf("checkpoints(0) = %v", got)
	}
	if got := checkpoints(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("checkpoints(1) = %v", got)
	}
	got := checkpoints(10)
	want := []int{0, 1, 3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("checkpoints(10) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkpoints(10) = %v, want %v", got, want)
		}
	}
}

func TestAblations(t *testing.T) {
	sc := micro()
	sim, err := AblationSimilarity(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim) != 6 {
		t.Errorf("similarity rows = %d", len(sim))
	}
	foundDefault := false
	for _, r := range sim {
		if r.Measure == "3gram-jaccard" {
			foundDefault = true
			if r.TrueGAs == 0 {
				t.Error("default measure found no true GAs")
			}
		}
	}
	if !foundDefault {
		t.Error("default measure missing from ablation")
	}

	link, err := AblationLinkage(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(link) != 2 || link[0].Linkage != "max" {
		t.Errorf("linkage rows = %+v", link)
	}

	ten, err := AblationTenure(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ten) != 5 {
		t.Errorf("tenure rows = %d", len(ten))
	}

	maps, err := AblationPCSAMaps(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 4 {
		t.Fatalf("maps rows = %d", len(maps))
	}
	// More bitmaps → lower (or equal) mean error, comparing extremes.
	if maps[len(maps)-1].MeanErr > maps[0].MeanErr {
		t.Errorf("1024 maps err %.3f above 16 maps err %.3f", maps[len(maps)-1].MeanErr, maps[0].MeanErr)
	}

	var buf bytes.Buffer
	if err := RenderSimilarity(&buf, sim); err != nil {
		t.Fatal(err)
	}
	if err := RenderLinkage(&buf, link); err != nil {
		t.Fatal(err)
	}
	if err := RenderTenure(&buf, ten); err != nil {
		t.Fatal(err)
	}
	if err := RenderPCSAMaps(&buf, maps); err != nil {
		t.Fatal(err)
	}
}

func TestQueryCostExperiment(t *testing.T) {
	sc := micro()
	rows, err := QueryCost(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sc.ChooseCounts) {
		t.Fatalf("rows = %d", len(rows))
	}
	// The §1 motivation: cost grows with the number of selected sources.
	first, last := rows[0], rows[len(rows)-1]
	if last.RowsScanned < first.RowsScanned {
		t.Errorf("rows scanned fell with more sources: %d → %d", first.RowsScanned, last.RowsScanned)
	}
	if last.TotalLatencyMS < first.TotalLatencyMS {
		t.Errorf("total latency fell with more sources: %.0f → %.0f", first.TotalLatencyMS, last.TotalLatencyMS)
	}
	for _, r := range rows {
		if r.SourcesQueried == 0 || r.RowsReturned == 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := RenderQueryCost(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rows_scanned") {
		t.Error("render missing header")
	}
}

func TestAblationPairwise(t *testing.T) {
	rows, err := AblationPairwise(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Method != "clustering" {
		t.Fatalf("rows = %+v", rows)
	}
	var clustering, starBest PairwiseRow
	for _, r := range rows {
		switch r.Method {
		case "clustering":
			clustering = r
		case "star-best":
			starBest = r
		}
	}
	// The holistic clustering should identify at least as many concepts as
	// the best star (the star is structurally limited to hub concepts).
	if clustering.TrueGAs < starBest.TrueGAs {
		t.Errorf("clustering found %d concepts, star-best %d", clustering.TrueGAs, starBest.TrueGAs)
	}
	var buf bytes.Buffer
	if err := RenderPairwise(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestAblationHybrid(t *testing.T) {
	rows, err := AblationHybrid(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].DataWeight != 0 {
		t.Fatalf("rows = %+v", rows)
	}
	// Name-only matching recovers no renamed attributes; any positive data
	// weight should recover at least some.
	if rows[0].Renamed != 0 {
		t.Errorf("w=0 recovered %d renamed attributes", rows[0].Renamed)
	}
	recovered := false
	for _, r := range rows[1:] {
		if r.Renamed > 0 {
			recovered = true
		}
	}
	if !recovered {
		t.Error("no data weight recovered any renamed attribute")
	}
	// Against the origin ground truth, hybrid matching should cover at
	// least as many attributes as name-only.
	if rows[2].AttrsInTrueGAs < rows[0].AttrsInTrueGAs {
		t.Errorf("w=0.5 covers %d attrs < name-only %d", rows[2].AttrsInTrueGAs, rows[0].AttrsInTrueGAs)
	}
	var buf bytes.Buffer
	if err := RenderHybrid(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

// TestFaultsExperiment checks the graceful-degradation sweep: the clean row
// is genuinely clean, every row's universe survived acquisition (dropped
// sources are the only losses), every solve stays feasible, and a second run
// reproduces the first bit-for-bit — fault injection must not smuggle
// nondeterminism into the harness.
func TestFaultsExperiment(t *testing.T) {
	sc := micro()
	rows, err := Faults(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(FaultRates) {
		t.Fatalf("rows = %d, want one per rate %v", len(rows), FaultRates)
	}
	clean := rows[0]
	if clean.Rate != 0 || clean.Plan != "none" || clean.Degraded != 0 || clean.Dropped != 0 {
		t.Errorf("clean row not clean: %+v", clean)
	}
	if clean.Universe != sc.BaseUniverse {
		t.Errorf("clean universe = %d, want %d", clean.Universe, sc.BaseUniverse)
	}
	for _, r := range rows {
		if !r.Feasible {
			t.Errorf("rate %.0f%%: infeasible solution", r.Rate*100)
		}
		if r.Universe != sc.BaseUniverse-r.Dropped {
			t.Errorf("rate %.0f%%: universe %d != base %d - dropped %d",
				r.Rate*100, r.Universe, sc.BaseUniverse, r.Dropped)
		}
		if r.Quality <= 0 || r.Quality > 1 {
			t.Errorf("rate %.0f%%: quality %v out of range", r.Rate*100, r.Quality)
		}
	}
	again, err := Faults(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		//mube:vet-ignore floatcmp — the determinism contract is bit-identical
		if rows[i] != again[i] {
			t.Errorf("rate %.0f%%: rerun differs: %+v vs %+v", rows[i].Rate*100, rows[i], again[i])
		}
	}
	var buf bytes.Buffer
	if err := RenderFaults(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fail_rate") {
		t.Error("render missing header")
	}
}
