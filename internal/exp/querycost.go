package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"mube/internal/match"
	"mube/internal/mediator"
	"mube/internal/opt"
	"mube/internal/pcsa"
	"mube/internal/synth"
)

// QueryCostRow is one point of the query-cost experiment: the execution cost
// of a fixed query workload over solutions of increasing size.
type QueryCostRow struct {
	Choose         int
	SourcesQueried int
	RowsScanned    int
	RowsReturned   int
	RowsMerged     int
	MaxLatencyMS   float64
	TotalLatencyMS float64
}

// QueryCost quantifies the paper's §1 motivation — "the more sources we
// have, the higher these [networking and processing] costs become" — by
// actually executing a fixed query workload through the mediator over
// solutions with growing m. It always runs at ≤1% data scale so row tables
// fit comfortably in memory.
func QueryCost(sc Scale) ([]QueryCostRow, error) {
	cfg := synth.Scaled(minF(sc.DataFactor, 0.01))
	cfg.NumSources = sc.BaseUniverse
	cfg.Seed = sc.Seed
	cfg.Sig = pcsa.Config{NumMaps: 128}
	cfg.KeepTuples = true
	res, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	quality, err := PaperQuality()
	if err != nil {
		return nil, err
	}
	matcher, err := match.New(res.Universe, match.Config{Theta: match.DefaultTheta})
	if err != nil {
		return nil, err
	}

	var rows []QueryCostRow
	for _, m := range sc.ChooseCounts {
		p := &opt.Problem{
			Universe:   res.Universe,
			Matcher:    matcher,
			Quality:    quality,
			MaxSources: m,
		}
		sol, err := sc.Solver(sc.BaseUniverse).Solve(context.Background(), p, sc.Options(sc.Seed))
		if err != nil {
			return nil, err
		}
		if !sol.MatchOK {
			return nil, fmt.Errorf("exp: no mediated schema for m=%d", m)
		}
		tables, err := synth.Materialize(res, sol.IDs)
		if err != nil {
			return nil, err
		}
		sys, err := mediator.New(res.Universe, sol.Schema, sol.IDs, tables)
		if err != nil {
			return nil, err
		}

		row := QueryCostRow{Choose: m}
		for _, q := range workload(sol.Schema.Len()) {
			out, err := sys.Execute(q)
			if err != nil {
				return nil, err
			}
			row.SourcesQueried += out.Stats.SourcesQueried
			row.RowsScanned += out.Stats.RowsScanned
			row.RowsReturned += len(out.Rows)
			row.RowsMerged += out.Stats.RowsMerged
			row.MaxLatencyMS += float64(out.Stats.MaxLatency) / float64(time.Millisecond)
			row.TotalLatencyMS += float64(out.Stats.TotalLatency) / float64(time.Millisecond)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// workload builds a small fixed query mix over the first GAs of the solution
// schema: a substring scan (touches every row of every answering source) and
// a bounded full read per GA.
func workload(numGAs int) []mediator.Query {
	n := numGAs
	if n > 3 {
		n = 3
	}
	var qs []mediator.Query
	for gi := 0; gi < n; gi++ {
		qs = append(qs,
			mediator.Query{Select: []int{gi}, Where: []mediator.Predicate{{GA: gi, Op: mediator.OpContains, Value: "-0"}}},
			mediator.Query{Select: []int{gi}, Limit: 100},
		)
	}
	return qs
}

// minF returns the smaller float.
func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// RenderQueryCost prints the query-cost experiment.
func RenderQueryCost(w io.Writer, rows []QueryCostRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "choose\tsources_queried\trows_scanned\trows_returned\trows_merged\tmax_latency_ms\ttotal_latency_ms")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.0f\t%.0f\n",
			r.Choose, r.SourcesQueried, r.RowsScanned, r.RowsReturned, r.RowsMerged, r.MaxLatencyMS, r.TotalLatencyMS)
	}
	return tw.Flush()
}
