package exp

import (
	"context"
	"math"
	"math/rand"
	"time"

	"mube/internal/bamm"
	"mube/internal/constraint"
	"mube/internal/eval"
	"mube/internal/opt"
	"mube/internal/pcsa"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/source"
)

// Table1Row is one row of Table 1 (quality of GAs): choose m sources from
// the base universe with no constraints and score the generated mediated
// schema against the 14-concept ground truth.
type Table1Row struct {
	Choose         int
	TrueGAs        int
	AttrsInTrueGAs int
	Missed         int
	FalseGAs       int
}

// Table1 reproduces Table 1 (§7.3).
func Table1(sc Scale) ([]Table1Row, error) {
	res, err := sc.Universe(sc.BaseUniverse)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, m := range sc.ChooseCounts {
		p, err := sc.Problem(res, m, constraint.Set{})
		if err != nil {
			return nil, err
		}
		sol, err := sc.Solver(sc.BaseUniverse).Solve(context.Background(), p, sc.Options(sc.Seed))
		if err != nil {
			return nil, err
		}
		stats := eval.Evaluate(res.Universe, sol.IDs, sol.Schema, nil)
		rows = append(rows, Table1Row{
			Choose:         m,
			TrueGAs:        stats.TrueGAs,
			AttrsInTrueGAs: stats.AttrsInTrueGAs,
			Missed:         stats.Missed,
			FalseGAs:       stats.FalseGAs,
		})
	}
	return rows, nil
}

// PCSARow is one point of the PCSA accuracy experiment: the estimated vs
// exact distinct count of a union of synthetic sources.
type PCSARow struct {
	Sources  int
	Exact    int
	Estimate float64
	// RelErr is |estimate − exact| / exact.
	RelErr float64
}

// PCSAResult aggregates the accuracy sweep.
type PCSAResult struct {
	Rows     []PCSARow
	MeanErr  float64
	WorstErr float64
}

// PCSA reproduces the §7.3 claim that probabilistic counting stays within
// ~7% of exact counting: it draws overlapping synthetic sources, unions
// their signatures, and compares against exact distinct counts.
func PCSA(sc Scale) (*PCSAResult, error) {
	r := rand.New(rand.NewSource(sc.Seed))
	poolSize := int64(float64(4_000_000) * sc.DataFactor)
	if poolSize < 10_000 {
		poolSize = 10_000
	}
	out := &PCSAResult{}
	for _, nSources := range []int{1, 2, 5, 10, 20, 50} {
		sig, err := pcsa.New(sc.Sig)
		if err != nil {
			return nil, err
		}
		exact := pcsa.NewExact()
		for s := 0; s < nSources; s++ {
			card := 1000 + r.Intn(20000)
			for t := 0; t < card; t++ {
				x := uint64(r.Int63n(poolSize))
				sig.AddUint64(x)
				exact.AddUint64(x)
			}
		}
		est := sig.Estimate()
		relErr := math.Abs(est-float64(exact.Count())) / float64(exact.Count())
		out.Rows = append(out.Rows, PCSARow{
			Sources:  nSources,
			Exact:    exact.Count(),
			Estimate: est,
			RelErr:   relErr,
		})
		out.MeanErr += relErr
		if relErr > out.WorstErr {
			out.WorstErr = relErr
		}
	}
	out.MeanErr /= float64(len(out.Rows))
	return out, nil
}

// SensitivityResult reports the §7.4 robustness experiment: perturb every
// QEF weight by up to ±15% (renormalized), re-solve, and measure how much
// the solution moves.
type SensitivityResult struct {
	Trials int
	// MaxGAChanges is the largest number of GAs that differ from the
	// baseline solution across trials (paper: at most 1).
	MaxGAChanges int
	// MeanGAChanges averages GA set differences across trials.
	MeanGAChanges float64
	// MaxSourceChanges is the largest symmetric difference of the chosen
	// source sets (paper: "the selected sources rarely changed").
	MaxSourceChanges int
	// MeanSourceChanges averages source set differences.
	MeanSourceChanges float64
	// MaxConceptChanges / MeanConceptChanges compare the schemas at the
	// level a user perceives them: the set of ground-truth concepts the
	// GAs identify. Swapping one near-duplicate source reshuffles GA
	// membership (counted above) without changing what the mediated schema
	// *means* (counted here).
	MaxConceptChanges  int
	MeanConceptChanges float64
}

// Sensitivity reproduces the weight-perturbation robustness experiment.
func Sensitivity(sc Scale) (*SensitivityResult, error) {
	res, err := sc.Universe(sc.BaseUniverse)
	if err != nil {
		return nil, err
	}
	matcher, err := sc.Matcher(res)
	if err != nil {
		return nil, err
	}
	qefs := append(qef.MainQEFs(), qef.Characteristic{Char: "mttf", Agg: qef.WSum{}})
	baseWeights := qef.PaperDefaults()

	problem := func(w qef.Weights) (*opt.Problem, error) {
		quality, err := qef.NewQuality(qefs, w)
		if err != nil {
			return nil, err
		}
		return &opt.Problem{
			Universe:   res.Universe,
			Matcher:    matcher,
			Quality:    quality,
			MaxSources: sc.ChooseDefault,
		}, nil
	}

	baseP, err := problem(baseWeights)
	if err != nil {
		return nil, err
	}
	tabuSol, err := sc.Solver(sc.BaseUniverse).Solve(context.Background(), baseP, sc.Options(sc.Seed))
	if err != nil {
		return nil, err
	}
	// Polish the baseline to a local optimum under the base weights so that
	// perturbed-weight polishes measure the weights' effect, not leftover
	// slack in the tabu solution.
	baseIDs, err := polish(baseP, tabuSol.IDs, sc.Seed)
	if err != nil {
		return nil, err
	}
	baseMatch, err := matcher.Match(baseIDs, constraint.Set{})
	if err != nil {
		return nil, err
	}
	baseGAs := gaKeySet(baseMatch.Schema)
	baseSrc := idSet(baseIDs)
	baseConcepts := conceptSet(res.Universe, baseMatch.Schema)

	r := rand.New(rand.NewSource(sc.Seed + 77))
	out := &SensitivityResult{Trials: 5 * sc.Repeats}
	for trial := 0; trial < out.Trials; trial++ {
		w := make(qef.Weights, len(baseWeights))
		for name, v := range baseWeights {
			w[name] = v * (1 + (r.Float64()*2-1)*0.15)
		}
		w = w.Normalized()
		// Re-optimize *deterministically* from the baseline solution under
		// the perturbed weights: a steepest-ascent polish moves only if the
		// perturbation actually created improving moves. This isolates the
		// weights' effect on the solution from tabu's stochastic path —
		// the question the paper asks is whether slightly different weights
		// change what µBE recommends.
		p, err := problem(w)
		if err != nil {
			return nil, err
		}
		ids, err := polish(p, baseIDs, sc.Seed)
		if err != nil {
			return nil, err
		}
		med, err := matcher.Match(ids, constraint.Set{})
		if err != nil {
			return nil, err
		}
		gaDiff := symDiff(baseGAs, gaKeySet(med.Schema))
		srcDiff := symDiffIDs(baseSrc, idSet(ids))
		conceptDiff := symDiffInts(baseConcepts, conceptSet(res.Universe, med.Schema))
		out.MeanGAChanges += float64(gaDiff)
		out.MeanSourceChanges += float64(srcDiff)
		out.MeanConceptChanges += float64(conceptDiff)
		if gaDiff > out.MaxGAChanges {
			out.MaxGAChanges = gaDiff
		}
		if srcDiff > out.MaxSourceChanges {
			out.MaxSourceChanges = srcDiff
		}
		if conceptDiff > out.MaxConceptChanges {
			out.MaxConceptChanges = conceptDiff
		}
	}
	out.MeanGAChanges /= float64(out.Trials)
	out.MeanSourceChanges /= float64(out.Trials)
	out.MeanConceptChanges /= float64(out.Trials)
	return out, nil
}

// conceptSet returns the ground-truth concepts identified by pure GAs of m.
func conceptSet(u *source.Universe, m schema.Mediated) map[int]struct{} {
	set := make(map[int]struct{})
	for _, g := range m.GAs {
		concept := -1
		pure := true
		for _, r := range g.Refs() {
			ci, ok := bamm.ConceptOf(u.AttrName(r))
			if !ok {
				pure = false
				break
			}
			if concept == -1 {
				concept = ci
			} else if ci != concept {
				pure = false
				break
			}
		}
		if pure && concept >= 0 {
			set[concept] = struct{}{}
		}
	}
	return set
}

// symDiffInts counts ints in exactly one of a, b.
func symDiffInts(a, b map[int]struct{}) int {
	n := 0
	for k := range a {
		if _, ok := b[k]; !ok {
			n++
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			n++
		}
	}
	return n
}

// polish runs deterministic steepest-ascent hill climbing from start until
// no sampled move improves the objective.
func polish(p *opt.Problem, start []schema.SourceID, seed int64) ([]schema.SourceID, error) {
	search, err := opt.NewSearch(context.Background(), p, opt.Options{Seed: seed, MaxEvals: -1, MaxIters: 1 << 20, Patience: 1 << 20})
	if err != nil {
		return nil, err
	}
	cur := search.NewSubset(append([]schema.SourceID(nil), start...))
	curQ := search.Eval.Eval(cur.IDs())
	for step := 0; step < 200; step++ {
		best := opt.NoMove
		bestQ := curQ
		for _, mv := range search.Moves(cur, 150) {
			if q := search.EvalMove(cur, mv); q > bestQ {
				bestQ = q
				best = mv
			}
		}
		if best == opt.NoMove {
			break
		}
		cur.Apply(best)
		curQ = bestQ
	}
	return cur.IDs(), nil
}

// gaKeySet canonicalizes a mediated schema into a set of GA keys.
func gaKeySet(m schema.Mediated) map[string]struct{} {
	set := make(map[string]struct{}, m.Len())
	for _, g := range m.GAs {
		set[g.Key()] = struct{}{}
	}
	return set
}

// idSet converts an id slice to a set.
func idSet(ids []schema.SourceID) map[schema.SourceID]struct{} {
	set := make(map[schema.SourceID]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return set
}

// symDiff counts elements in exactly one of a, b.
func symDiff(a, b map[string]struct{}) int {
	n := 0
	for k := range a {
		if _, ok := b[k]; !ok {
			n++
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			n++
		}
	}
	return n
}

// symDiffIDs counts source ids in exactly one of a, b.
func symDiffIDs(a, b map[schema.SourceID]struct{}) int {
	n := 0
	for k := range a {
		if _, ok := b[k]; !ok {
			n++
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			n++
		}
	}
	return n
}

// SolverRow is one line of the solver-comparison experiment (§6: "we found
// that tabu search gives the best results").
type SolverRow struct {
	Solver  string
	Quality float64 // mean over repeats
	Best    float64
	Worst   float64
	Millis  float64 // mean wall time
}

// Solvers compares all heuristic solvers at equal evaluation budgets on the
// standard problem.
func Solvers(sc Scale) ([]SolverRow, error) {
	res, err := sc.Universe(sc.BaseUniverse)
	if err != nil {
		return nil, err
	}
	p, err := sc.Problem(res, sc.ChooseDefault, constraint.Set{})
	if err != nil {
		return nil, err
	}
	// Equal budgets: cap evaluations at what tabu uses at this scale.
	probe, err := sc.Solver(sc.BaseUniverse).Solve(context.Background(), p, sc.Options(sc.Seed))
	if err != nil {
		return nil, err
	}
	budget := opt.Options{
		MaxEvals: probe.Evals,
		MaxIters: 1 << 20, // bounded by evaluations
		Patience: 1 << 20,
	}

	var rows []SolverRow
	for _, s := range allSolvers(sc) {
		row := SolverRow{Solver: s.Name(), Worst: math.Inf(1), Best: math.Inf(-1)}
		for rep := 0; rep < sc.Repeats; rep++ {
			b := budget
			b.Seed = sc.Seed + int64(rep)
			start := time.Now()
			sol, err := s.Solve(context.Background(), p, b)
			if err != nil {
				return nil, err
			}
			row.Millis += float64(time.Since(start).Microseconds()) / 1000
			row.Quality += sol.Quality
			row.Best = math.Max(row.Best, sol.Quality)
			row.Worst = math.Min(row.Worst, sol.Quality)
		}
		row.Quality /= float64(sc.Repeats)
		row.Millis /= float64(sc.Repeats)
		rows = append(rows, row)
	}
	return rows, nil
}
