package exp

import (
	"context"
	"fmt"
	"io"

	"mube/internal/probe"
	"mube/internal/qef"
	"mube/internal/synth"
	"mube/internal/telemetry"
	"mube/internal/watch"
)

// ChurnRow is one churn rate's outcome over a full watch run: how much
// quality the online loop held onto, and what the warm-started re-solves cost
// relative to the from-scratch rebuild+cold-solve reference.
type ChurnRow struct {
	// Rate is the per-epoch churn fraction (deaths + drift).
	Rate float64
	// Epochs is the number of churn ticks run.
	Epochs int
	// Sources is the universe size after the final epoch.
	Sources int
	// BaselineQ is the epoch-0 solve on the unchurned universe; FinalQ the
	// last epoch's warm re-solve.
	BaselineQ, FinalQ float64
	// QRecovery is the mean per-epoch recovered-quality fraction
	// (DeltaReport.QRecovery against the baseline).
	QRecovery float64
	// WarmEvals and ColdEvals total the evaluation counts of the warm
	// re-solves and their cold references across all epochs; WarmFrac is
	// their ratio — the headline warm-start saving.
	WarmEvals, ColdEvals int
	WarmFrac             float64
	// Died and Arrived total the sources lost and gained across all epochs.
	Died, Arrived int
}

// ChurnRates are the per-epoch churn fractions the online-integration
// experiment sweeps.
var ChurnRates = []float64{0, 0.1, 0.3}

// ChurnEpochs is the number of ticks per rate.
const ChurnEpochs = 10

// Churn measures online integration under churn (ROADMAP item 3): for each
// rate, a watch loop runs ChurnEpochs ticks over a fresh BaseUniverse-sized
// world — MTTF-weighted deaths, vocabulary drift, synth arrivals — applying
// incremental universe updates and delta-pool warm re-solves (the optional
// pool is the carried solution plus the epoch's touched sources), with the
// full-pool rebuild+cold reference (Config.Cold) solved alongside.
// The universes are generated fresh rather than through the scale's cache:
// the loop mutates its world in place.
func Churn(sc Scale) ([]ChurnRow, error) {
	qefs := append(qef.MainQEFs(), qef.Characteristic{Char: "mttf", Agg: qef.WSum{}})
	rows := make([]ChurnRow, 0, len(ChurnRates))
	for _, rate := range ChurnRates {
		cfg := synth.Scaled(sc.DataFactor)
		cfg.NumSources = sc.BaseUniverse
		cfg.Seed = sc.Seed
		cfg.Sig = sc.Sig
		u, err := synth.GenerateUniverse(cfg)
		if err != nil {
			return nil, err
		}
		arrivals := synth.Scaled(sc.DataFactor)
		arrivals.Sig = sc.Sig
		l, err := watch.New(watch.Config{
			Universe:   u,
			Epochs:     ChurnEpochs,
			Seed:       sc.Seed,
			ChurnRate:  rate,
			Arrivals:   arrivals,
			MaxSources: sc.ChooseDefault,
			Solver:     "tabu",
			QEFs:       qefs,
			Weights:    qef.PaperDefaults(),
			Options:    sc.Options(sc.Seed),
			Probe:      probe.Policy{},
			Faults:     sc.plan(),
			Cold:       true,
			DeltaPool:  true,
			Recorder:   sc.Rec,
		})
		if err != nil {
			return nil, err
		}
		reports, err := l.Run(context.Background())
		if err != nil {
			return nil, err
		}
		base := reports[0]
		last := reports[len(reports)-1]
		row := ChurnRow{
			Rate:      rate,
			Epochs:    ChurnEpochs,
			Sources:   last.Sources,
			BaselineQ: base.QAfter,
			FinalQ:    last.QAfter,
		}
		for _, r := range reports[1:] {
			row.QRecovery += r.QRecovery(base.QAfter)
			row.WarmEvals += r.WarmEvals
			row.ColdEvals += r.ColdEvals
			row.Died += r.Died + r.Dropped
			row.Arrived += r.Arrived
		}
		row.QRecovery /= float64(len(reports) - 1)
		if row.ColdEvals > 0 {
			row.WarmFrac = float64(row.WarmEvals) / float64(row.ColdEvals)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderChurn prints the churn ladder, plus the run-level metrics line
// mube-benchjson archives into BENCH_fig.json (taken from the highest churn
// rate — the stress case the warm-start claim is about).
func RenderChurn(w io.Writer, rows []ChurnRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "churn\tepochs\tsources\tbase_q\tfinal_q\tq_recovery\twarm_evals\tcold_evals\twarm_frac\tdied\tarrived")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f%%\t%d\t%d\t%.4f\t%.4f\t%.3f\t%d\t%d\t%.3f\t%d\t%d\n",
			r.Rate*100, r.Epochs, r.Sources, r.BaselineQ, r.FinalQ, r.QRecovery,
			r.WarmEvals, r.ColdEvals, r.WarmFrac, r.Died, r.Arrived)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	stress := rows[len(rows)-1]
	fmt.Fprintln(w, telemetry.MetricsLine(map[string]float64{
		"warm_evals_frac": stress.WarmFrac,
		"q_recovery":      stress.QRecovery,
	}))
	return nil
}
