package exp

import (
	"context"

	"mube/internal/constraint"
	"mube/internal/telemetry"
)

// ConvergenceRow is one checkpoint of one solver's convergence curve: the
// best-so-far and current Q(S) after a given number of iterations, extracted
// from the solver.iter telemetry trace of a single seeded run.
type ConvergenceRow struct {
	Solver string
	Iter   int     // the solver's own iteration label at this checkpoint
	CurQ   float64 // current Q(S) at the checkpoint
	BestQ  float64 // best-so-far Q(S) at the checkpoint
	Evals  int     // distinct evaluations consumed by the checkpoint
}

// Convergence runs every heuristic solver once on the standard problem with a
// memory-sink recorder attached and samples its best-Q trajectory at
// power-of-two checkpoints (1st, 2nd, 4th, 8th, … trace point) plus the last.
// This is the per-iteration visibility the telemetry layer exists for: the
// same events a `mube solve -trace` run writes as JSONL, post-processed into
// a comparison table.
func Convergence(sc Scale) ([]ConvergenceRow, error) {
	res, err := sc.Universe(sc.BaseUniverse)
	if err != nil {
		return nil, err
	}
	p, err := sc.Problem(res, sc.ChooseDefault, constraint.Set{})
	if err != nil {
		return nil, err
	}
	var rows []ConvergenceRow
	for _, s := range allSolvers(sc) {
		sink := &telemetry.MemorySink{}
		opts := sc.Options(sc.Seed)
		opts.Recorder = telemetry.New(sink)
		if _, err := s.Solve(context.Background(), p, opts); err != nil {
			return nil, err
		}
		var iters []telemetry.Event
		evals := make(map[int64]int) // seq of solver.iter → evals consumed so far
		computed := 0
		for _, ev := range sink.Events() {
			switch ev.Name {
			case "eval.batch":
				if v, ok := ev.Attr("jobs"); ok {
					computed += int(v.(int64))
				}
			case "solver.iter":
				evals[ev.Seq] = computed
				iters = append(iters, ev)
			}
		}
		for _, idx := range checkpoints(len(iters)) {
			ev := iters[idx]
			row := ConvergenceRow{Solver: s.Name(), Evals: evals[ev.Seq]}
			if v, ok := ev.Attr("iter"); ok {
				row.Iter = int(v.(int64))
			}
			if v, ok := ev.Attr("cur_q"); ok {
				row.CurQ = v.(float64)
			}
			if v, ok := ev.Attr("best_q"); ok {
				row.BestQ = v.(float64)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// checkpoints returns the 0-based indices 0, 1, 3, 7, … (the 1st, 2nd, 4th,
// 8th, … elements) of an n-element trajectory, always including the last.
func checkpoints(n int) []int {
	if n == 0 {
		return nil
	}
	var idx []int
	for i := 1; i <= n; i *= 2 {
		idx = append(idx, i-1)
	}
	if last := n - 1; idx[len(idx)-1] != last {
		idx = append(idx, last)
	}
	return idx
}
