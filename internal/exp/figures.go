package exp

import (
	"context"
	"math/rand"
	"time"

	"mube/internal/opt"
	"mube/internal/qef"
	"mube/internal/schema"
)

// Fig5Row is one point of Figure 5: execution time to choose ChooseDefault
// sources from a universe of Size sources under one constraint config.
type Fig5Row struct {
	Size    int
	Config  string
	Millis  float64
	Quality float64
	Evals   int
}

// Fig5 reproduces Figure 5: execution time vs universe size (100..700),
// choosing 20 sources, across the five constraint configurations.
func Fig5(sc Scale) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, n := range sc.UniverseSizes {
		res, err := sc.Universe(n)
		if err != nil {
			return nil, err
		}
		for _, cc := range ConstraintConfigs() {
			r := rand.New(rand.NewSource(sc.Seed + int64(n)))
			cons, err := BuildConstraints(res, cc, sc.ChooseDefault, r)
			if err != nil {
				return nil, err
			}
			p, err := sc.Problem(res, sc.ChooseDefault, cons)
			if err != nil {
				return nil, err
			}
			solver := sc.Solver(n)
			var totalMS, totalQ float64
			var evals int
			for rep := 0; rep < sc.Repeats; rep++ {
				start := time.Now()
				sol, err := solver.Solve(context.Background(), p, sc.Options(sc.Seed+int64(rep)))
				if err != nil {
					return nil, err
				}
				totalMS += float64(time.Since(start).Microseconds()) / 1000
				totalQ += sol.Quality
				evals += sol.Evals
			}
			rows = append(rows, Fig5Row{
				Size:    n,
				Config:  cc.Label,
				Millis:  totalMS / float64(sc.Repeats),
				Quality: totalQ / float64(sc.Repeats),
				Evals:   evals / sc.Repeats,
			})
		}
	}
	return rows, nil
}

// Fig67Row is one point of Figures 6 and 7: execution time and overall
// quality when choosing Choose sources from the base universe.
type Fig67Row struct {
	Choose  int
	Config  string
	Millis  float64
	Quality float64
	Evals   int
}

// Fig67 reproduces Figures 6 (time) and 7 (overall quality) in one sweep:
// choose 10..50 sources from a universe of 200 under the five constraint
// configurations.
func Fig67(sc Scale) ([]Fig67Row, error) {
	res, err := sc.Universe(sc.BaseUniverse)
	if err != nil {
		return nil, err
	}
	var rows []Fig67Row
	for _, m := range sc.ChooseCounts {
		for _, cc := range ConstraintConfigs() {
			r := rand.New(rand.NewSource(sc.Seed + int64(m)))
			cons, err := BuildConstraints(res, cc, m, r)
			if err != nil {
				return nil, err
			}
			p, err := sc.Problem(res, m, cons)
			if err != nil {
				return nil, err
			}
			solver := sc.Solver(sc.BaseUniverse)
			var totalMS, totalQ float64
			var evals int
			for rep := 0; rep < sc.Repeats; rep++ {
				start := time.Now()
				sol, err := solver.Solve(context.Background(), p, sc.Options(sc.Seed+int64(rep)))
				if err != nil {
					return nil, err
				}
				totalMS += float64(time.Since(start).Microseconds()) / 1000
				totalQ += sol.Quality
				evals += sol.Evals
			}
			rows = append(rows, Fig67Row{
				Choose:  m,
				Config:  cc.Label,
				Millis:  totalMS / float64(sc.Repeats),
				Quality: totalQ / float64(sc.Repeats),
				Evals:   evals / sc.Repeats,
			})
		}
	}
	return rows, nil
}

// Fig8Row is one point of Figure 8: the cardinality of the chosen solution
// as the weight on the Card QEF grows.
type Fig8Row struct {
	CardWeight float64
	// SolutionCard is Σ|s| over the chosen sources (tuples).
	SolutionCard int64
	// CardFraction is Card(S) ∈ [0,1].
	CardFraction float64
	Quality      float64
}

// Fig8 reproduces Figure 8: choose 20 sources from 200 while sweeping the
// Card QEF weight from 0.1 to 1.0, the remaining weights sharing the rest
// equally. Increasing the weight biases µBE toward high-cardinality
// solutions; the curve flattens once the top-cardinality sources that
// satisfy the matching threshold are already chosen.
func Fig8(sc Scale) ([]Fig8Row, error) {
	res, err := sc.Universe(sc.BaseUniverse)
	if err != nil {
		return nil, err
	}
	matcher, err := sc.Matcher(res)
	if err != nil {
		return nil, err
	}
	qefs := append(qef.MainQEFs(), qef.Characteristic{Char: "mttf", Agg: qef.WSum{}})
	var rows []Fig8Row
	// Each repeat sweeps the weight upward, warm-starting every step from
	// the previous step's solution — the iterative-session dynamic of a
	// user nudging one weight and re-solving.
	warm := make(map[int][]schema.SourceID, sc.Repeats)
	for w := 0.1; w <= 1.0001; w += 0.1 {
		weights := make(qef.Weights, len(qefs))
		rest := (1 - w) / float64(len(qefs)-1)
		for _, f := range qefs {
			if f.Name() == qef.NameCardinality {
				weights[f.Name()] = w
			} else {
				weights[f.Name()] = rest
			}
		}
		quality, err := qef.NewQuality(qefs, weights)
		if err != nil {
			return nil, err
		}
		p := &opt.Problem{
			Universe:   res.Universe,
			Matcher:    matcher,
			Quality:    quality,
			MaxSources: sc.ChooseDefault,
		}
		var cardSum int64
		var fracSum, qSum float64
		for rep := 0; rep < sc.Repeats; rep++ {
			opts := sc.Options(sc.Seed + int64(rep))
			opts.Initial = warm[rep]
			sol, err := sc.Solver(sc.BaseUniverse).Solve(context.Background(), p, opts)
			if err != nil {
				return nil, err
			}
			warm[rep] = sol.IDs
			cardSum += res.Universe.SumCardinality(sol.IDs)
			fracSum += sol.Breakdown[qef.NameCardinality]
			qSum += sol.Quality
		}
		rows = append(rows, Fig8Row{
			CardWeight:   w,
			SolutionCard: cardSum / int64(sc.Repeats),
			CardFraction: fracSum / float64(sc.Repeats),
			Quality:      qSum / float64(sc.Repeats),
		})
	}
	return rows, nil
}
