package exp

import (
	"fmt"
	"io"
	"time"

	"mube/internal/bamm"
	"mube/internal/constraint"
	"mube/internal/eval"
	"mube/internal/match"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/synth"
)

// HybridRow is one line of the data-based-similarity ablation: matching a
// fixed selection at one data weight, scored against the *origin* ground
// truth (renamed attributes keep their concept).
type HybridRow struct {
	DataWeight     float64
	Quality        float64
	GAs            int
	TrueGAs        int
	FalseGAs       int
	AttrsInTrueGAs int
	// Renamed counts attributes in true GAs whose *names* are off-domain —
	// matches only data-based similarity can make.
	Renamed int
	Millis  float64
}

// AblationHybrid measures what data-based similarity buys (§3: "Match(S)
// can use any attribute similarity measure, whether it is schema based or
// data based"). It generates a universe with aggressive attribute *renaming*
// (the site keeps its data, changes its labels) and per-attribute MinHash
// value sketches, then sweeps the data weight. Name-only matching (w=0)
// cannot recover a renamed attribute; blended matching can — and the origin
// ground truth makes the recovery measurable.
func AblationHybrid(sc Scale) ([]HybridRow, error) {
	cfg := synth.Scaled(minF(sc.DataFactor, 0.01))
	cfg.NumSources = sc.BaseUniverse
	cfg.Seed = sc.Seed
	cfg.Sig = pcsa.Config{NumMaps: 128}
	cfg.PReplace = 0.35 // aggressive renaming: the regime data similarity targets
	cfg.AttrSignatures = true
	res, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	originOf := func(r schema.AttrRef) (int, bool) {
		ci := res.AttrOrigins[r.Source][r.Attr]
		return ci, ci >= 0
	}
	// Select from the *perturbed* region (sources ≥ 50 carry renames); the
	// conformant copies have nothing to recover.
	n := res.Universe.Len()
	sel := make([]schema.SourceID, 0, 30)
	for id := n - 30; id < n; id++ {
		sel = append(sel, schema.SourceID(id))
	}

	var rows []HybridRow
	for _, w := range []float64{0, 0.25, 0.5, 0.75} {
		m, err := match.New(res.Universe, match.Config{Theta: match.DefaultTheta, DataWeight: w})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		mr, err := m.Match(sel, constraint.Set{})
		if err != nil {
			return nil, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if !mr.OK {
			return nil, fmt.Errorf("exp: hybrid match failed at w=%v", w)
		}
		stats := eval.EvaluateRefs(res.Universe, sel, mr.Schema, originOf)

		// Count recovered renamed attributes: members of pure GAs whose
		// name is off-domain (origin says concept, name says noise).
		renamed := 0
		for _, g := range mr.Schema.GAs {
			if ci, pure := pureConcept(res, g); pure && ci >= 0 {
				for _, r := range g.Refs() {
					if _, byName := nameConcept(res, r); !byName {
						renamed++
					}
				}
			}
		}
		rows = append(rows, HybridRow{
			DataWeight:     w,
			Quality:        mr.Quality,
			GAs:            mr.Schema.Len(),
			TrueGAs:        stats.TrueGAs,
			FalseGAs:       stats.FalseGAs,
			AttrsInTrueGAs: stats.AttrsInTrueGAs,
			Renamed:        renamed,
			Millis:         ms,
		})
	}
	return rows, nil
}

// pureConcept reports whether every attribute of g has the same origin
// concept.
func pureConcept(res *synth.Result, g schema.GA) (int, bool) {
	concept := -2
	for _, r := range g.Refs() {
		ci := res.AttrOrigins[r.Source][r.Attr]
		if ci < 0 {
			return -1, false
		}
		if concept == -2 {
			concept = ci
		} else if ci != concept {
			return -1, false
		}
	}
	return concept, concept >= 0
}

// nameConcept resolves a reference's concept by its (possibly renamed) name.
func nameConcept(res *synth.Result, r schema.AttrRef) (int, bool) {
	return bamm.ConceptOf(res.Universe.AttrName(r))
}

// RenderHybrid prints the data-based-similarity ablation.
func RenderHybrid(w io.Writer, rows []HybridRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "data_weight\tquality\tGAs\ttrue_GAs\tfalse_GAs\tattrs_covered\trenamed_recovered\ttime_ms")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.4f\t%d\t%d\t%d\t%d\t%d\t%.1f\n",
			r.DataWeight, r.Quality, r.GAs, r.TrueGAs, r.FalseGAs, r.AttrsInTrueGAs, r.Renamed, r.Millis)
	}
	return tw.Flush()
}
