package exp

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// newTab returns a tabwriter configured for aligned console tables.
func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// RenderFig5 prints Figure 5 as an aligned table.
func RenderFig5(w io.Writer, rows []Fig5Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "universe\tconstraints\ttime_ms\tquality\tevals")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%.1f\t%.4f\t%d\n", r.Size, r.Config, r.Millis, r.Quality, r.Evals)
	}
	return tw.Flush()
}

// RenderFig67 prints Figures 6 and 7 as one aligned table (time and quality
// columns).
func RenderFig67(w io.Writer, rows []Fig67Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "choose\tconstraints\ttime_ms\tquality\tevals")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%.1f\t%.4f\t%d\n", r.Choose, r.Config, r.Millis, r.Quality, r.Evals)
	}
	return tw.Flush()
}

// RenderFig8 prints Figure 8.
func RenderFig8(w io.Writer, rows []Fig8Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "card_weight\tsolution_tuples\tcard_fraction\tquality")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.1f\t%d\t%.4f\t%.4f\n", r.CardWeight, r.SolutionCard, r.CardFraction, r.Quality)
	}
	return tw.Flush()
}

// RenderTable1 prints Table 1.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "sources_selected\ttrue_GAs\tattrs_in_true_GAs\ttrue_GAs_missed\tfalse_GAs")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\n", r.Choose, r.TrueGAs, r.AttrsInTrueGAs, r.Missed, r.FalseGAs)
	}
	return tw.Flush()
}

// RenderPCSA prints the probabilistic-counting accuracy sweep.
func RenderPCSA(w io.Writer, res *PCSAResult) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "sources_in_union\texact\testimate\trel_err")
	for _, r := range res.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.2f%%\n", r.Sources, r.Exact, r.Estimate, 100*r.RelErr)
	}
	fmt.Fprintf(tw, "\nmean_err\t%.2f%%\tworst_err\t%.2f%%\n", 100*res.MeanErr, 100*res.WorstErr)
	return tw.Flush()
}

// RenderSensitivity prints the weight-perturbation robustness result.
func RenderSensitivity(w io.Writer, res *SensitivityResult) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "metric\tvalue")
	fmt.Fprintf(tw, "trials\t%d\n", res.Trials)
	fmt.Fprintf(tw, "max_GA_changes\t%d\n", res.MaxGAChanges)
	fmt.Fprintf(tw, "mean_GA_changes\t%.2f\n", res.MeanGAChanges)
	fmt.Fprintf(tw, "max_source_changes\t%d\n", res.MaxSourceChanges)
	fmt.Fprintf(tw, "mean_source_changes\t%.2f\n", res.MeanSourceChanges)
	fmt.Fprintf(tw, "max_concept_changes\t%d\n", res.MaxConceptChanges)
	fmt.Fprintf(tw, "mean_concept_changes\t%.2f\n", res.MeanConceptChanges)
	return tw.Flush()
}

// RenderSolvers prints the solver comparison.
func RenderSolvers(w io.Writer, rows []SolverRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "solver\tmean_quality\tbest\tworst\ttime_ms")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.4f\t%.1f\n", r.Solver, r.Quality, r.Best, r.Worst, r.Millis)
	}
	return tw.Flush()
}

// RenderConvergence prints the convergence-curve experiment.
func RenderConvergence(w io.Writer, rows []ConvergenceRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "solver\titer\tevals\tcur_q\tbest_q")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\t%.4f\n", r.Solver, r.Iter, r.Evals, r.CurQ, r.BestQ)
	}
	return tw.Flush()
}

// RenderSimilarity prints the similarity-measure ablation.
func RenderSimilarity(w io.Writer, rows []SimilarityRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "measure\tquality\tGAs\ttrue_GAs\tfalse_GAs\tattrs_covered\ttime_ms")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%d\t%d\t%d\t%d\t%.1f\n",
			r.Measure, r.Quality, r.GAs, r.TrueGAs, r.FalseGAs, r.AttrsInTrueGAs, r.Millis)
	}
	return tw.Flush()
}

// RenderLinkage prints the linkage ablation.
func RenderLinkage(w io.Writer, rows []LinkageRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "linkage\tquality\tGAs\ttrue_GAs\tfalse_GAs\tattrs_covered")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%d\t%d\t%d\t%d\n",
			r.Linkage, r.Quality, r.GAs, r.TrueGAs, r.FalseGAs, r.AttrsInTrueGAs)
	}
	return tw.Flush()
}

// RenderTenure prints the tabu-tenure ablation.
func RenderTenure(w io.Writer, rows []TenureRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "tenure\tquality\ttime_ms")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.4f\t%.1f\n", r.Tenure, r.Quality, r.Millis)
	}
	return tw.Flush()
}

// RenderPairwise prints the mediation-topology ablation.
func RenderPairwise(w io.Writer, rows []PairwiseRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "method\tquality\tGAs\ttrue_GAs\tfalse_GAs\tattrs_covered\ttime_ms")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%d\t%d\t%d\t%d\t%.1f\n",
			r.Method, r.Quality, r.GAs, r.TrueGAs, r.FalseGAs, r.AttrsInTrueGAs, r.Millis)
	}
	return tw.Flush()
}

// RenderPCSAMaps prints the PCSA bitmap-count ablation.
func RenderPCSAMaps(w io.Writer, rows []PCSAMapsRow) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "bitmaps\tsignature_bytes\tmean_err\tworst_err")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.2f%%\t%.2f%%\n", r.NumMaps, r.SizeBytes, 100*r.MeanErr, 100*r.WorstErr)
	}
	return tw.Flush()
}
