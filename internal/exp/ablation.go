package exp

import (
	"context"
	"math"
	"math/rand"
	"time"

	"mube/internal/constraint"
	"mube/internal/eval"
	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/opt/solvers"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/strutil"
)

// allSolvers returns the comparison solvers with tabu's neighborhood scaled
// to the experiment's universe.
func allSolvers(sc Scale) []opt.Solver {
	all := solvers.All()
	all[0] = sc.Solver(sc.BaseUniverse)
	return all
}

// SimilarityRow is one line of the similarity-measure ablation: matching a
// fixed source selection with a different attribute similarity measure.
type SimilarityRow struct {
	Measure        string
	Quality        float64
	GAs            int
	TrueGAs        int
	FalseGAs       int
	AttrsInTrueGAs int
	Millis         float64
}

// AblationSimilarity evaluates every built-in similarity measure on a fixed
// selection from the base universe. The paper fixes 3-gram Jaccard; this
// ablation shows the matching layer is measure-agnostic (§3: "Match(S) can
// use any attribute similarity measure").
func AblationSimilarity(sc Scale) ([]SimilarityRow, error) {
	res, err := sc.Universe(sc.BaseUniverse)
	if err != nil {
		return nil, err
	}
	sel := fixedSelection(res.Universe.Len(), 30)
	var rows []SimilarityRow
	for _, measure := range strutil.Measures() {
		m, err := match.New(res.Universe, match.Config{Similarity: measure, Theta: match.DefaultTheta})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		mr, err := m.Match(sel, constraint.Set{})
		if err != nil {
			return nil, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		stats := eval.Evaluate(res.Universe, sel, mr.Schema, nil)
		rows = append(rows, SimilarityRow{
			Measure:        measure.Name(),
			Quality:        mr.Quality,
			GAs:            mr.Schema.Len(),
			TrueGAs:        stats.TrueGAs,
			FalseGAs:       stats.FalseGAs,
			AttrsInTrueGAs: stats.AttrsInTrueGAs,
			Millis:         ms,
		})
	}
	return rows, nil
}

// LinkageRow is one line of the linkage ablation.
type LinkageRow struct {
	Linkage        string
	Quality        float64
	GAs            int
	TrueGAs        int
	FalseGAs       int
	AttrsInTrueGAs int
}

// AblationLinkage compares max linkage (the paper's choice, which enables
// GA-constraint bridging) against average linkage on a fixed selection.
func AblationLinkage(sc Scale) ([]LinkageRow, error) {
	res, err := sc.Universe(sc.BaseUniverse)
	if err != nil {
		return nil, err
	}
	sel := fixedSelection(res.Universe.Len(), 30)
	var rows []LinkageRow
	for _, linkage := range []match.Linkage{match.MaxLinkage, match.AvgLinkage} {
		m, err := match.New(res.Universe, match.Config{Theta: match.DefaultTheta, Linkage: linkage})
		if err != nil {
			return nil, err
		}
		mr, err := m.Match(sel, constraint.Set{})
		if err != nil {
			return nil, err
		}
		stats := eval.Evaluate(res.Universe, sel, mr.Schema, nil)
		rows = append(rows, LinkageRow{
			Linkage:        linkage.String(),
			Quality:        mr.Quality,
			GAs:            mr.Schema.Len(),
			TrueGAs:        stats.TrueGAs,
			FalseGAs:       stats.FalseGAs,
			AttrsInTrueGAs: stats.AttrsInTrueGAs,
		})
	}
	return rows, nil
}

// TenureRow is one line of the tabu-tenure ablation.
type TenureRow struct {
	Tenure  int
	Quality float64
	Millis  float64
}

// AblationTenure sweeps tabu search's tenure parameter on the standard
// problem, showing the robustness plateau around the default.
func AblationTenure(sc Scale) ([]TenureRow, error) {
	res, err := sc.Universe(sc.BaseUniverse)
	if err != nil {
		return nil, err
	}
	p, err := sc.Problem(res, sc.ChooseDefault, constraint.Set{})
	if err != nil {
		return nil, err
	}
	nb := sc.BaseUniverse / 10
	if nb < 30 {
		nb = 30
	}
	var rows []TenureRow
	for _, tenure := range []int{2, 4, 8, 16, 32} {
		s := tabuWithTenure(tenure, nb)
		var q, ms float64
		for rep := 0; rep < sc.Repeats; rep++ {
			start := time.Now()
			sol, err := s.Solve(context.Background(), p, sc.Options(sc.Seed+int64(rep)))
			if err != nil {
				return nil, err
			}
			ms += float64(time.Since(start).Microseconds()) / 1000
			q += sol.Quality
		}
		rows = append(rows, TenureRow{
			Tenure:  tenure,
			Quality: q / float64(sc.Repeats),
			Millis:  ms / float64(sc.Repeats),
		})
	}
	return rows, nil
}

// PairwiseRow is one line of the mediation-topology ablation: µBE's holistic
// clustering vs the traditional star of pairwise (Hungarian) matchings.
type PairwiseRow struct {
	Method         string
	Quality        float64
	GAs            int
	TrueGAs        int
	FalseGAs       int
	AttrsInTrueGAs int
	Millis         float64
}

// AblationPairwise compares µBE's constrained clustering against the
// pairwise star baseline (§8: traditional matchers match two schemas at a
// time) on a fixed selection. The star topology structurally misses every
// concept its hub does not expose.
func AblationPairwise(sc Scale) ([]PairwiseRow, error) {
	res, err := sc.Universe(sc.BaseUniverse)
	if err != nil {
		return nil, err
	}
	matcher, err := sc.Matcher(res)
	if err != nil {
		return nil, err
	}
	sel := fixedSelection(res.Universe.Len(), 30)
	theta := matcher.Config().Theta
	beta := matcher.Config().Beta

	var rows []PairwiseRow
	score := func(method string, run func() (match.Result, error)) error {
		start := time.Now()
		mr, err := run()
		if err != nil {
			return err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		stats := eval.Evaluate(res.Universe, sel, mr.Schema, nil)
		rows = append(rows, PairwiseRow{
			Method:         method,
			Quality:        mr.Quality,
			GAs:            mr.Schema.Len(),
			TrueGAs:        stats.TrueGAs,
			FalseGAs:       stats.FalseGAs,
			AttrsInTrueGAs: stats.AttrsInTrueGAs,
			Millis:         ms,
		})
		return nil
	}
	if err := score("clustering", func() (match.Result, error) {
		return matcher.Match(sel, constraint.Set{})
	}); err != nil {
		return nil, err
	}
	if err := score("star-first", func() (match.Result, error) {
		return matcher.StarMediate(sel[0], sel, theta, beta), nil
	}); err != nil {
		return nil, err
	}
	if err := score("star-best", func() (match.Result, error) {
		return matcher.BestStarMediate(sel, theta, beta), nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// PCSAMapsRow is one line of the PCSA bitmap-count ablation.
type PCSAMapsRow struct {
	NumMaps   int
	SizeBytes int
	MeanErr   float64
	WorstErr  float64
}

// AblationPCSAMaps sweeps the number of PCSA bitmaps, trading signature size
// against union-estimation error (theoretical SE ≈ 0.78/√m).
func AblationPCSAMaps(sc Scale) ([]PCSAMapsRow, error) {
	var rows []PCSAMapsRow
	for _, m := range []int{16, 64, 256, 1024} {
		cfg := pcsa.Config{NumMaps: m}
		r := rand.New(rand.NewSource(sc.Seed))
		var mean, worst float64
		const trials = 10
		for trial := 0; trial < trials; trial++ {
			sig, err := pcsa.New(cfg)
			if err != nil {
				return nil, err
			}
			exact := pcsa.NewExact()
			n := 5000 + r.Intn(50000)
			for i := 0; i < n; i++ {
				x := r.Uint64()
				sig.AddUint64(x)
				exact.AddUint64(x)
			}
			relErr := math.Abs(sig.Estimate()-float64(exact.Count())) / float64(exact.Count())
			mean += relErr
			if relErr > worst {
				worst = relErr
			}
		}
		rows = append(rows, PCSAMapsRow{
			NumMaps:   m,
			SizeBytes: 8 * m,
			MeanErr:   mean / trials,
			WorstErr:  worst,
		})
	}
	return rows, nil
}

// fixedSelection returns the first min(k, n) source ids — a deterministic
// selection for matching-only ablations.
func fixedSelection(n, k int) []schema.SourceID {
	if k > n {
		k = n
	}
	ids := make([]schema.SourceID, k)
	for i := range ids {
		ids[i] = schema.SourceID(i)
	}
	return ids
}
