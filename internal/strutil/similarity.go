package strutil

// Similarity measures the likeness of two attribute names and returns a value
// in [0,1], with 1 meaning identical. Implementations must be symmetric.
//
// µBE's Match operator is parameterized by a Similarity; the paper's
// prototype uses TriGramJaccard.
type Similarity interface {
	// Sim returns the similarity of a and b in [0,1].
	Sim(a, b string) float64
	// Name identifies the measure (for reports and ablation tables).
	Name() string
}

// Func adapts a plain function to the Similarity interface.
type Func struct {
	F     func(a, b string) float64
	Label string
}

// Sim invokes the wrapped function.
func (f Func) Sim(a, b string) float64 { return f.F(a, b) }

// Name returns the measure's label.
func (f Func) Name() string { return f.Label }

// NGramJaccard is the paper's similarity measure generalized to any gram
// size: the Jaccard coefficient of the two names' character n-gram sets.
type NGramJaccard struct {
	N int
}

// Sim returns the Jaccard coefficient of the n-gram sets of a and b.
func (m NGramJaccard) Sim(a, b string) float64 {
	return JaccardSets(NGrams(a, m.N), NGrams(b, m.N))
}

// Name returns e.g. "3gram-jaccard".
func (m NGramJaccard) Name() string {
	return string(rune('0'+m.N)) + "gram-jaccard"
}

// TriGramJaccard is the prototype's default measure (§3): Jaccard similarity
// of 3-gram sets of the normalized attribute names.
var TriGramJaccard Similarity = NGramJaccard{N: 3}

// NGramDice is the Sørensen–Dice coefficient over n-gram sets; it weights
// the intersection more heavily than Jaccard and is a common alternative.
type NGramDice struct {
	N int
}

// Sim returns the Dice coefficient of the n-gram sets of a and b.
func (m NGramDice) Sim(a, b string) float64 {
	return DiceSets(NGrams(a, m.N), NGrams(b, m.N))
}

// Name returns e.g. "3gram-dice".
func (m NGramDice) Name() string { return string(rune('0'+m.N)) + "gram-dice" }

// LevenshteinSim is a normalized edit-distance similarity:
// 1 − dist(a,b)/max(|a|,|b|), computed on normalized names.
type LevenshteinSim struct{}

// Sim returns the normalized Levenshtein similarity of a and b.
func (LevenshteinSim) Sim(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	if len(na) == 0 && len(nb) == 0 {
		return 0
	}
	d := Levenshtein(na, nb)
	m := len(na)
	if len(nb) > m {
		m = len(nb)
	}
	return 1 - float64(d)/float64(m)
}

// Name returns "levenshtein".
func (LevenshteinSim) Name() string { return "levenshtein" }

// Levenshtein returns the edit distance between a and b with unit costs.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			c := prev[j-1] + cost // substitute
			if d := prev[j] + 1; d < c {
				c = d // delete
			}
			if d := cur[j-1] + 1; d < c {
				c = d // insert
			}
			cur[j] = c
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// JaroWinklerSim is the Jaro–Winkler similarity, effective for short strings
// such as attribute names; it boosts matches with a common prefix.
type JaroWinklerSim struct{}

// Name returns "jaro-winkler".
func (JaroWinklerSim) Name() string { return "jaro-winkler" }

// Sim returns the Jaro–Winkler similarity of the normalized names.
func (JaroWinklerSim) Sim(a, b string) float64 {
	return JaroWinkler(Normalize(a), Normalize(b))
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 0
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	amatch := make([]bool, la)
	bmatch := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if bmatch[j] || a[i] != b[j] {
				continue
			}
			amatch[i] = true
			bmatch[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !amatch[i] {
			continue
		}
		for !bmatch[j] {
			j++
		}
		if a[i] != b[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler returns the Jaro–Winkler similarity with the standard prefix
// scale of 0.1 and a maximum prefix length of 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// TokenJaccardSim is the Jaccard coefficient over word tokens of the names;
// robust to token reordering ("first name" vs "name first").
type TokenJaccardSim struct{}

// Name returns "token-jaccard".
func (TokenJaccardSim) Name() string { return "token-jaccard" }

// Sim returns the token-set Jaccard similarity of a and b.
func (TokenJaccardSim) Sim(a, b string) float64 {
	ta, tb := Tokens(a), Tokens(b)
	sa := make(map[string]struct{}, len(ta))
	for _, t := range ta {
		sa[t] = struct{}{}
	}
	sb := make(map[string]struct{}, len(tb))
	for _, t := range tb {
		sb[t] = struct{}{}
	}
	return JaccardSets(sa, sb)
}

// Measures lists every built-in similarity measure, keyed by Name(). It is
// used by the CLI (-sim flag) and the similarity-measure ablation experiment.
func Measures() []Similarity {
	return []Similarity{
		TriGramJaccard,
		NGramJaccard{N: 2},
		NGramDice{N: 3},
		LevenshteinSim{},
		JaroWinklerSim{},
		TokenJaccardSim{},
	}
}

// ByName returns the built-in measure with the given Name, or nil.
func ByName(name string) Similarity {
	for _, m := range Measures() {
		if m.Name() == name {
			return m
		}
	}
	return nil
}
