package strutil_test

import (
	"fmt"

	"mube/internal/strutil"
)

// ExampleTriGramJaccard shows the paper's attribute similarity measure: the
// Jaccard coefficient of the names' 3-gram sets after normalization.
func ExampleTriGramJaccard() {
	sim := strutil.TriGramJaccard
	fmt.Printf("author / Author_Name: %.2f\n", sim.Sim("author", "Author_Name"))
	fmt.Printf("author / writer:      %.2f\n", sim.Sim("author", "writer"))
	fmt.Printf("keyword / keywords:   %.2f\n", sim.Sim("keyword", "keywords"))
	// Output:
	// author / Author_Name: 0.40
	// author / writer:      0.07
	// keyword / keywords:   0.58
}

// ExampleNormalize shows the canonical form matching operates on.
func ExampleNormalize() {
	fmt.Println(strutil.Normalize("  Publication_Year (YYYY) "))
	// Output:
	// publication year yyyy
}
