package strutil

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mube/internal/testutil"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Author_Name", "author name"},
		{"  after  date ", "after date"},
		{"ISBN-13", "isbn 13"},
		{"Keyword", "keyword"},
		{"", ""},
		{"___", ""},
		{"Your Town!", "your town"},
		{"PubYear2004", "pubyear2004"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokens(t *testing.T) {
	got := Tokens("Event_Name (Type)")
	want := []string{"event", "name", "type"}
	if len(got) != len(want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNGramsBasic(t *testing.T) {
	g := NGrams("ab", 3) // padded: ##ab## → ##a, #ab, ab#, b##
	want := []string{"##a", "#ab", "ab#", "b##"}
	if len(g) != len(want) {
		t.Fatalf("got %d grams %v, want %d", len(g), g, len(want))
	}
	for _, w := range want {
		if _, ok := g[w]; !ok {
			t.Errorf("missing gram %q", w)
		}
	}
}

func TestNGramsDegenerate(t *testing.T) {
	if g := NGrams("abc", 0); g != nil {
		t.Errorf("NGrams with n=0 should be nil, got %v", g)
	}
	if g := NGrams("", 3); len(g) != 2 {
		// "####" yields grams ###, ###... actually "" normalizes to "" so padded
		// is "####" giving {"###"} plus duplicates collapsed: positions 0 and 1
		// both "###" wait: "##"+""+"##" = "####", grams: ###, ### → set size 1.
		if len(g) != 1 {
			t.Errorf("NGrams(\"\",3) set size = %d, want 1", len(g))
		}
	}
}

func TestJaccardIdentityAndDisjoint(t *testing.T) {
	if s := TriGramJaccard.Sim("author", "author"); !testutil.AlmostEqual(s, 1) {
		t.Errorf("identical names: sim = %v, want 1", s)
	}
	if s := TriGramJaccard.Sim("xyz", "qpw"); s != 0 {
		t.Errorf("disjoint names: sim = %v, want 0", s)
	}
}

func TestSimilarNamesScoreAboveDissimilar(t *testing.T) {
	for _, m := range Measures() {
		same := m.Sim("author name", "author")
		diff := m.Sim("author name", "price range")
		if same <= diff {
			t.Errorf("%s: sim(author name, author)=%v not > sim(author name, price range)=%v",
				m.Name(), same, diff)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"book", "back", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	// Classic reference pair: MARTHA vs MARHTA ≈ 0.9611.
	got := JaroWinkler("martha", "marhta")
	if got < 0.96 || got > 0.9625 {
		t.Errorf("JaroWinkler(martha, marhta) = %v, want ≈0.9611", got)
	}
	if !testutil.AlmostEqual(JaroWinkler("abc", "abc"), 1) {
		t.Error("identical strings must score 1")
	}
}

// randomName produces a printable random attribute-like name.
func randomName(r *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz _"
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alpha[r.Intn(len(alpha))])
	}
	return b.String()
}

func TestSimilarityProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, m := range Measures() {
		m := m
		// Symmetry and range for random inputs.
		prop := func(seed int64) bool {
			rr := rand.New(rand.NewSource(seed))
			a, b := randomName(rr), randomName(rr)
			ab, ba := m.Sim(a, b), m.Sim(b, a)
			if !testutil.AlmostEqual(ab, ba) {
				t.Logf("%s not symmetric on %q,%q: %v vs %v", m.Name(), a, b, ab, ba)
				return false
			}
			return ab >= 0 && ab <= 1
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
		// Identity on non-empty strings scores 1 (token/gram measures need
		// at least one token).
		for i := 0; i < 50; i++ {
			s := randomName(r)
			if Normalize(s) == "" {
				continue
			}
			if got := m.Sim(s, s); got < 0.999 {
				t.Errorf("%s: Sim(%q,%q) = %v, want 1", m.Name(), s, s, got)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, m := range Measures() {
		if got := ByName(m.Name()); got == nil || got.Name() != m.Name() {
			t.Errorf("ByName(%q) failed round-trip", m.Name())
		}
	}
	if ByName("no-such-measure") != nil {
		t.Error("ByName of unknown measure should be nil")
	}
}

func TestSetCoefficients(t *testing.T) {
	a := map[string]struct{}{"x": {}, "y": {}}
	b := map[string]struct{}{"y": {}, "z": {}, "w": {}}
	if got := JaccardSets(a, b); !testutil.AlmostEqual(got, 0.25) {
		t.Errorf("Jaccard = %v, want 0.25", got)
	}
	if got := DiceSets(a, b); !testutil.AlmostEqual(got, 0.4) {
		t.Errorf("Dice = %v, want 0.4", got)
	}
	if got := OverlapSets(a, b); !testutil.AlmostEqual(got, 0.5) {
		t.Errorf("Overlap = %v, want 0.5", got)
	}
	empty := map[string]struct{}{}
	if JaccardSets(empty, empty) != 0 || DiceSets(empty, empty) != 0 || OverlapSets(empty, a) != 0 {
		t.Error("empty-set coefficients must be 0")
	}
}
