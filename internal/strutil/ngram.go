// Package strutil provides the low-level string machinery used by µBE's
// schema matching layer: attribute-name normalization, tokenization, n-gram
// extraction, and a family of pluggable string similarity measures.
//
// The paper's prototype measures attribute similarity as the Jaccard
// coefficient between the 3-gram sets of the attribute names (§3); every
// other measure here exists so that Match(S) can be instantiated with an
// alternative measure, as the paper explicitly allows ("Match(S) can use any
// attribute similarity measure").
package strutil

import "strings"

// Normalize canonicalizes an attribute name for matching: it lowercases the
// name, maps punctuation and underscores to spaces, and collapses runs of
// whitespace. Matching is performed on normalized names so that "Author_Name"
// and "author name" are identical.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastSpace := true // trim leading space
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
			lastSpace = false
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastSpace = false
		default:
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Tokens splits a normalized name into its word tokens.
func Tokens(s string) []string {
	return strings.Fields(Normalize(s))
}

// NGrams returns the set of character n-grams of s, after normalization.
// Following common practice (and so that names shorter than n still produce
// grams), the string is padded with n-1 leading and trailing '#' sentinels.
// The result is a set: duplicate grams appear once.
func NGrams(s string, n int) map[string]struct{} {
	if n <= 0 {
		return nil
	}
	norm := Normalize(s)
	pad := strings.Repeat("#", n-1)
	padded := pad + norm + pad
	set := make(map[string]struct{}, len(padded))
	for i := 0; i+n <= len(padded); i++ {
		set[padded[i:i+n]] = struct{}{}
	}
	return set
}

// TriGrams returns the 3-gram set of s, the paper's default representation.
func TriGrams(s string) map[string]struct{} { return NGrams(s, 3) }

// setOverlap returns |a ∩ b| for two gram sets.
func setOverlap(a, b map[string]struct{}) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for g := range a {
		if _, ok := b[g]; ok {
			n++
		}
	}
	return n
}

// JaccardSets returns |a∩b| / |a∪b| for two sets, and 0 when both are empty.
func JaccardSets(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := setOverlap(a, b)
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// DiceSets returns the Sørensen–Dice coefficient 2|a∩b| / (|a|+|b|).
func DiceSets(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	return 2 * float64(setOverlap(a, b)) / float64(len(a)+len(b))
}

// OverlapSets returns the overlap coefficient |a∩b| / min(|a|,|b|).
func OverlapSets(a, b map[string]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	return float64(setOverlap(a, b)) / float64(m)
}
