package discovery

import (
	"testing"

	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
)

func universe(t *testing.T) *source.Universe {
	t.Helper()
	u := source.NewUniverse(pcsa.Config{NumMaps: 64})
	specs := []struct {
		name  string
		attrs []string
	}{
		{"books-r-us", []string{"title", "author", "price"}},
		{"theater-tickets", []string{"event", "venue", "date"}},
		{"london-theater", []string{"keyword", "date", "type"}},
		{"car-parts", []string{"engine", "gearbox"}},
		{"library", []string{"title", "author", "isbn", "subject"}},
	}
	for _, sp := range specs {
		if _, err := u.Add(source.Uncooperative(sp.name, schema.NewSchema(sp.attrs...))); err != nil {
			t.Fatal(err)
		}
	}
	return u
}

func TestSearchRanksRelevantSources(t *testing.T) {
	idx := Build(universe(t))
	hits := idx.Search("theater", 0)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	// Both theater sources found; the car-parts and book sources absent.
	for _, h := range hits {
		if h.Source != 1 && h.Source != 2 {
			t.Errorf("irrelevant source %d matched", h.Source)
		}
		if h.Score <= 0 {
			t.Errorf("non-positive score %v", h.Score)
		}
	}
}

func TestSearchMultiToken(t *testing.T) {
	idx := Build(universe(t))
	hits := idx.Search("title author", 0)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	// library's document ("library" + 4 attrs = 5 tokens) is shorter than
	// books-r-us's ("books r us" + 3 attrs = 6 tokens), so with identical
	// matches it ranks first under TF normalization.
	if hits[0].Source != 4 {
		t.Errorf("expected library first, got source %d", hits[0].Source)
	}
	if len(hits[0].Matched) != 2 {
		t.Errorf("matched tokens = %v", hits[0].Matched)
	}
}

func TestSearchRareTokensWeighMore(t *testing.T) {
	idx := Build(universe(t))
	// "date" appears in two sources, "engine" in one: a query with both
	// ranks the engine source first.
	hits := idx.Search("date engine", 0)
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Source != 3 {
		t.Errorf("rare-token source should rank first, got %d", hits[0].Source)
	}
}

func TestSearchLimitsAndEmpty(t *testing.T) {
	idx := Build(universe(t))
	if hits := idx.Search("date", 1); len(hits) != 1 {
		t.Errorf("k=1 returned %d hits", len(hits))
	}
	if hits := idx.Search("", 5); hits != nil {
		t.Errorf("empty query returned %v", hits)
	}
	if hits := idx.Search("zzzznothing", 5); len(hits) != 0 {
		t.Errorf("no-match query returned %v", hits)
	}
}

func TestSubuniverse(t *testing.T) {
	u := universe(t)
	idx := Build(u)
	hits := idx.Search("theater", 0)
	sub, back, err := idx.Subuniverse(hits)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || len(back) != 2 {
		t.Fatalf("subuniverse = %d sources", sub.Len())
	}
	for i := 0; i < sub.Len(); i++ {
		orig := u.Source(back[i])
		if sub.Source(schema.SourceID(i)).Name != orig.Name {
			t.Errorf("subuniverse source %d name mismatch", i)
		}
	}
}

func TestVocabularyAndDescribe(t *testing.T) {
	idx := Build(universe(t))
	vocab := idx.Vocabulary()
	if len(vocab) == 0 {
		t.Fatal("empty vocabulary")
	}
	// Sorted.
	for i := 1; i < len(vocab); i++ {
		if vocab[i-1] > vocab[i] {
			t.Fatal("vocabulary not sorted")
		}
	}
	hits := idx.Search("isbn", 1)
	if len(hits) != 1 {
		t.Fatal("isbn should hit the library")
	}
	desc := idx.DescribeHit(hits[0])
	if desc == "" {
		t.Error("empty description")
	}
}
