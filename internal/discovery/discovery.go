// Package discovery is the source-discovery front end of the µBE pipeline:
// the paper's universes come from querying a hidden-Web search engine
// ("issue the query theater in ... CompletePlanet.com"). This package plays
// that role locally: it indexes source descriptions (names and attribute
// names) and answers ranked keyword queries, so a user can carve a
// domain-relevant universe out of a larger catalog before handing it to µBE
// — or locate source IDs to constrain during a session (`mube find`).
package discovery

import (
	"math"
	"sort"
	"strings"

	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/strutil"
)

// Index is an inverted token index over a universe's source descriptions.
type Index struct {
	u *source.Universe
	// postings maps a token to the sources containing it and the token's
	// in-source frequency.
	postings map[string]map[schema.SourceID]int
	// docLen is the token count per source.
	docLen map[schema.SourceID]int
}

// Build indexes the universe: each source's "document" is its name plus all
// of its attribute names, tokenized and normalized.
func Build(u *source.Universe) *Index {
	idx := &Index{
		u:        u,
		postings: make(map[string]map[schema.SourceID]int),
		docLen:   make(map[schema.SourceID]int),
	}
	for _, s := range u.Sources() {
		tokens := strutil.Tokens(s.Name)
		for a := 0; a < s.Schema.Len(); a++ {
			tokens = append(tokens, strutil.Tokens(s.Schema.Name(a))...)
		}
		idx.docLen[s.ID] = len(tokens)
		for _, tok := range tokens {
			m, ok := idx.postings[tok]
			if !ok {
				m = make(map[schema.SourceID]int)
				idx.postings[tok] = m
			}
			m[s.ID]++
		}
	}
	return idx
}

// Hit is one ranked search result.
type Hit struct {
	Source schema.SourceID
	Score  float64
	// Matched lists the query tokens found in the source.
	Matched []string
}

// Search ranks sources against a free-text query by TF–IDF: rare tokens
// (appearing in few sources) weigh more, and shorter schemas that still
// match score higher. It returns at most k hits, best first; k ≤ 0 means
// all.
func (idx *Index) Search(query string, k int) []Hit {
	tokens := strutil.Tokens(query)
	if len(tokens) == 0 {
		return nil
	}
	n := float64(idx.u.Len())
	scores := make(map[schema.SourceID]float64)
	matched := make(map[schema.SourceID]map[string]struct{})
	for _, tok := range tokens {
		posting, ok := idx.postings[tok]
		if !ok {
			continue
		}
		idf := math.Log(1 + n/float64(len(posting)))
		for sid, tf := range posting {
			scores[sid] += float64(tf) / float64(idx.docLen[sid]) * idf
			set, ok := matched[sid]
			if !ok {
				set = make(map[string]struct{})
				matched[sid] = set
			}
			set[tok] = struct{}{}
		}
	}
	hits := make([]Hit, 0, len(scores))
	for sid, score := range scores {
		toks := make([]string, 0, len(matched[sid]))
		for t := range matched[sid] {
			toks = append(toks, t)
		}
		sort.Strings(toks)
		hits = append(hits, Hit{Source: sid, Score: score, Matched: toks})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score > hits[j].Score {
			return true
		}
		if hits[i].Score < hits[j].Score {
			return false
		}
		return hits[i].Source < hits[j].Source
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// Subuniverse copies the hit sources into a fresh universe (preserving their
// order of relevance) and returns it together with the mapping from new IDs
// back to the original ones — the "discovered universe" a µBE session then
// explores.
func (idx *Index) Subuniverse(hits []Hit) (*source.Universe, []schema.SourceID, error) {
	sub := source.NewUniverse(idx.u.SignatureConfig())
	back := make([]schema.SourceID, 0, len(hits))
	for _, h := range hits {
		orig := idx.u.Source(h.Source)
		clone := &source.Source{
			Name:            orig.Name,
			Schema:          orig.Schema,
			Cardinality:     orig.Cardinality,
			Signature:       orig.Signature,
			Characteristics: orig.Characteristics,
		}
		if _, err := sub.Add(clone); err != nil {
			return nil, nil, err
		}
		back = append(back, h.Source)
	}
	return sub, back, nil
}

// Vocabulary returns the indexed tokens, sorted — useful for CLI tab
// completion and diagnostics.
func (idx *Index) Vocabulary() []string {
	out := make([]string, 0, len(idx.postings))
	for tok := range idx.postings {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// DescribeHit renders a hit for terminal output.
func (idx *Index) DescribeHit(h Hit) string {
	s := idx.u.Source(h.Source)
	return strings.Join([]string{s.Name, s.Schema.String()}, " ")
}
