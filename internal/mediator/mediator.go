// Package mediator executes queries over a chosen µBE data integration
// system: a set of selected sources and the mediated schema generated for
// them. It completes the life cycle the paper's introduction motivates —
// once sources and schema are chosen, the system must "retrieve data from
// the source while executing queries, map this data to the global mediated
// schema, and resolve any inconsistencies with data retrieved from other
// sources" — and makes the cost argument concrete: the more sources a
// solution includes, the more rows are scanned and the higher the simulated
// latency.
//
// Queries are selections and projections over Global Attributes. A source
// contributes to a query if its schema maps attributes to every GA the query
// filters on; rows are translated to the mediated schema through the GA
// membership of their attributes, merged across sources, and deduplicated,
// with provenance retained per merged row.
package mediator

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/store"
)

// System is a queryable data integration system.
type System struct {
	u       *source.Universe
	med     schema.Mediated
	sources []schema.SourceID
	tables  map[schema.SourceID]*store.Table
	// attrGA maps a source attribute to the GA it belongs to (-1 if none).
	attrGA map[schema.AttrRef]int
}

// New assembles a system from a universe, the selected sources, the mediated
// schema over them, and a row table per selected source.
func New(u *source.Universe, med schema.Mediated, sources []schema.SourceID, tables map[schema.SourceID]*store.Table) (*System, error) {
	if u == nil {
		return nil, fmt.Errorf("mediator: nil universe")
	}
	if !med.Disjoint() {
		return nil, fmt.Errorf("mediator: mediated schema GAs overlap")
	}
	for _, id := range sources {
		if id < 0 || int(id) >= u.Len() {
			return nil, fmt.Errorf("mediator: source %d out of range", id)
		}
		tb, ok := tables[id]
		if !ok {
			return nil, fmt.Errorf("mediator: no row table for source %d", id)
		}
		if tb.Schema().Len() != u.Source(id).Schema.Len() {
			return nil, fmt.Errorf("mediator: table arity %d != schema arity %d for source %d",
				tb.Schema().Len(), u.Source(id).Schema.Len(), id)
		}
	}
	attrGA := make(map[schema.AttrRef]int)
	for gi, g := range med.GAs {
		for _, r := range g.Refs() {
			attrGA[r] = gi
		}
	}
	return &System{
		u:       u,
		med:     med,
		sources: append([]schema.SourceID(nil), sources...),
		tables:  tables,
		attrGA:  attrGA,
	}, nil
}

// Schema returns the system's mediated schema.
func (sys *System) Schema() schema.Mediated { return sys.med }

// Op is a predicate operator.
type Op int

const (
	// OpEq matches values exactly.
	OpEq Op = iota
	// OpContains matches values containing the operand as a substring.
	OpContains
	// OpPrefix matches values starting with the operand.
	OpPrefix
)

// String names the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpContains:
		return "contains"
	case OpPrefix:
		return "prefix"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// match applies the operator.
func (o Op) match(value, operand string) bool {
	switch o {
	case OpEq:
		return value == operand
	case OpContains:
		return strings.Contains(value, operand)
	case OpPrefix:
		return strings.HasPrefix(value, operand)
	}
	return false
}

// Predicate filters on one GA of the mediated schema.
type Predicate struct {
	GA    int
	Op    Op
	Value string
}

// Query selects GA columns from the integration system, filtered by
// conjunctive predicates.
type Query struct {
	// Select lists the GA indexes to project. Must be non-empty.
	Select []int
	// Where is a conjunction of predicates.
	Where []Predicate
	// Limit caps the number of merged result rows (0 = no limit).
	Limit int
}

// validate checks GA indexes and operators.
func (q Query) validate(med schema.Mediated) error {
	if len(q.Select) == 0 {
		return fmt.Errorf("mediator: query selects nothing")
	}
	check := func(ga int) error {
		if ga < 0 || ga >= med.Len() {
			return fmt.Errorf("mediator: GA %d out of range [0,%d)", ga, med.Len())
		}
		return nil
	}
	for _, ga := range q.Select {
		if err := check(ga); err != nil {
			return err
		}
	}
	for _, p := range q.Where {
		if err := check(p.GA); err != nil {
			return err
		}
		if p.Op != OpEq && p.Op != OpContains && p.Op != OpPrefix {
			return fmt.Errorf("mediator: unknown operator %v", p.Op)
		}
	}
	if q.Limit < 0 {
		return fmt.Errorf("mediator: negative limit")
	}
	return nil
}

// Row is one merged result row: values aligned with the query's Select list
// and the provenance of every source that contributed it.
type Row struct {
	Values     []string
	Provenance []schema.SourceID
}

// Stats quantifies the execution — the cost side of µBE's source-selection
// trade-off.
type Stats struct {
	// SourcesQueried counts sources that could answer the query.
	SourcesQueried int
	// SourcesSkipped counts selected sources lacking a queried GA.
	SourcesSkipped int
	// RowsScanned counts rows read across all queried sources.
	RowsScanned int
	// RowsMerged counts duplicate rows merged away across sources.
	RowsMerged int
	// MaxLatency simulates querying sources in parallel: the largest
	// per-source latency characteristic among queried sources.
	MaxLatency time.Duration
	// TotalLatency simulates querying serially: the sum of latencies.
	TotalLatency time.Duration
}

// Result is the query output.
type Result struct {
	Rows  []Row
	Stats Stats
}

// Execute runs the query against every selected source that can answer it.
func (sys *System) Execute(q Query) (*Result, error) {
	if err := q.validate(sys.med); err != nil {
		return nil, err
	}
	res := &Result{}
	type merged struct {
		idx  int
		prov map[schema.SourceID]struct{}
	}
	seen := make(map[string]*merged)

	for _, id := range sys.sources {
		cols, ok := sys.bind(id, q)
		if !ok {
			res.Stats.SourcesSkipped++
			continue
		}
		res.Stats.SourcesQueried++
		if lat, has := sys.u.Source(id).Characteristic("latency"); has {
			d := time.Duration(lat * float64(time.Millisecond))
			res.Stats.TotalLatency += d
			if d > res.Stats.MaxLatency {
				res.Stats.MaxLatency = d
			}
		}
		tb := sys.tables[id]
		tb.Scan(func(r store.Row) bool {
			res.Stats.RowsScanned++
			for i, p := range q.Where {
				if !p.Op.match(r[cols.where[i]], p.Value) {
					return true
				}
			}
			values := make([]string, len(q.Select))
			for i, col := range cols.sel {
				if col >= 0 {
					values[i] = r[col]
				}
			}
			key := strings.Join(values, "\x00")
			if m, dup := seen[key]; dup {
				m.prov[id] = struct{}{}
				res.Stats.RowsMerged++
				return true
			}
			seen[key] = &merged{idx: len(res.Rows), prov: map[schema.SourceID]struct{}{id: {}}}
			res.Rows = append(res.Rows, Row{Values: values})
			return true
		})
	}

	// Attach provenance in a deterministic order.
	for _, m := range seen {
		prov := make([]schema.SourceID, 0, len(m.prov))
		for id := range m.prov {
			prov = append(prov, id)
		}
		sort.Slice(prov, func(i, j int) bool { return prov[i] < prov[j] })
		res.Rows[m.idx].Provenance = prov
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// binding maps a query's GA positions to one source's attribute columns.
type binding struct {
	sel   []int // per Select entry: column index or -1 (source lacks the GA)
	where []int // per Where entry: column index (all present, or no binding)
}

// bind resolves the query's GAs against source id's schema. A source can
// answer the query only if it has a column for every WHERE GA and for at
// least one SELECT GA.
func (sys *System) bind(id schema.SourceID, q Query) (binding, bool) {
	n := sys.u.Source(id).Schema.Len()
	colOf := func(ga int) int {
		for a := 0; a < n; a++ {
			if gi, ok := sys.attrGA[schema.AttrRef{Source: id, Attr: a}]; ok && gi == ga {
				return a
			}
		}
		return -1
	}
	b := binding{sel: make([]int, len(q.Select)), where: make([]int, len(q.Where))}
	anySel := false
	for i, ga := range q.Select {
		b.sel[i] = colOf(ga)
		if b.sel[i] >= 0 {
			anySel = true
		}
	}
	if !anySel {
		return binding{}, false
	}
	for i, p := range q.Where {
		b.where[i] = colOf(p.GA)
		if b.where[i] < 0 {
			return binding{}, false
		}
	}
	return b, true
}
