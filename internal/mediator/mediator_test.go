package mediator

import (
	"testing"
	"time"

	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/store"
)

func ref(s, a int) schema.AttrRef { return schema.AttrRef{Source: schema.SourceID(s), Attr: a} }

// fixture builds a 3-source system:
//
//	s0 {title, author}        rows: (dune,herbert) (emma,austen)
//	s1 {book title, writer}   rows: (dune,herbert) (ilion,simmons)
//	s2 {title, price}         rows: (dune,9) (emma,7)
//
// mediated schema: GA0 = title ∪ book title, GA1 = author ∪ writer,
// GA2 = price.
func fixture(t *testing.T) *System {
	t.Helper()
	u := source.NewUniverse(pcsa.Config{NumMaps: 64})
	add := func(name string, lat float64, attrs ...string) schema.SourceID {
		s := source.Uncooperative(name, schema.NewSchema(attrs...))
		if lat > 0 {
			s.SetCharacteristic("latency", lat)
		}
		id, err := u.Add(s)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	s0 := add("a", 100, "title", "author")
	s1 := add("b", 300, "book title", "writer")
	s2 := add("c", 50, "title", "price")

	med := schema.NewMediated(
		schema.NewGA(ref(0, 0), ref(1, 0), ref(2, 0)), // GA0 title
		schema.NewGA(ref(0, 1), ref(1, 1)),            // GA1 author
		schema.NewGA(ref(2, 1)),                       // GA2 price
	)
	tables := map[schema.SourceID]*store.Table{}
	t0 := store.NewTable(u.Source(s0).Schema)
	t0.MustAppend(store.Row{"dune", "herbert"})
	t0.MustAppend(store.Row{"emma", "austen"})
	t1 := store.NewTable(u.Source(s1).Schema)
	t1.MustAppend(store.Row{"dune", "herbert"})
	t1.MustAppend(store.Row{"ilion", "simmons"})
	t2 := store.NewTable(u.Source(s2).Schema)
	t2.MustAppend(store.Row{"dune", "9"})
	t2.MustAppend(store.Row{"emma", "7"})
	tables[s0], tables[s1], tables[s2] = t0, t1, t2

	sys, err := New(u, med, []schema.SourceID{s0, s1, s2}, tables)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// gaIndex finds the GA of the fixture schema containing the given ref.
func gaIndex(t *testing.T, sys *System, r schema.AttrRef) int {
	t.Helper()
	for i, g := range sys.Schema().GAs {
		if g.Contains(r) {
			return i
		}
	}
	t.Fatalf("ref %v not in schema", r)
	return -1
}

func TestSelectAcrossNameVariants(t *testing.T) {
	sys := fixture(t)
	gaTitle := gaIndex(t, sys, ref(0, 0))
	gaAuthor := gaIndex(t, sys, ref(0, 1))
	res, err := sys.Execute(Query{
		Select: []int{gaTitle, gaAuthor},
		Where:  []Predicate{{GA: gaTitle, Op: OpEq, Value: "dune"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// s0 and s1 both answer (they cover title and author); s2 lacks GA1 in
	// SELECT but has GA0, so it answers too with author = "".
	want := map[string]bool{"dune\x00herbert": true, "dune\x00": true}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		key := r.Values[0] + "\x00" + r.Values[1]
		if !want[key] {
			t.Errorf("unexpected row %v", r.Values)
		}
	}
	if res.Stats.SourcesQueried != 3 || res.Stats.SourcesSkipped != 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestDeduplicationAndProvenance(t *testing.T) {
	sys := fixture(t)
	gaTitle := gaIndex(t, sys, ref(0, 0))
	gaAuthor := gaIndex(t, sys, ref(0, 1))
	res, err := sys.Execute(Query{
		Select: []int{gaTitle, gaAuthor},
		Where:  []Predicate{{GA: gaAuthor, Op: OpEq, Value: "herbert"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only s0 and s1 can evaluate the author predicate; both return
	// (dune, herbert), merged into one row with both sources as provenance.
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if r.Values[0] != "dune" || r.Values[1] != "herbert" {
		t.Errorf("row = %v", r.Values)
	}
	if len(r.Provenance) != 2 || r.Provenance[0] != 0 || r.Provenance[1] != 1 {
		t.Errorf("provenance = %v", r.Provenance)
	}
	if res.Stats.RowsMerged != 1 {
		t.Errorf("RowsMerged = %d, want 1", res.Stats.RowsMerged)
	}
	if res.Stats.SourcesSkipped != 1 { // s2 lacks the author GA
		t.Errorf("SourcesSkipped = %d", res.Stats.SourcesSkipped)
	}
}

func TestPredicateOnGAMissingFromSourceSkipsIt(t *testing.T) {
	sys := fixture(t)
	gaTitle := gaIndex(t, sys, ref(0, 0))
	gaPrice := gaIndex(t, sys, ref(2, 1))
	res, err := sys.Execute(Query{
		Select: []int{gaTitle, gaPrice},
		Where:  []Predicate{{GA: gaPrice, Op: OpEq, Value: "7"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SourcesQueried != 1 {
		t.Errorf("only s2 can filter on price; queried = %d", res.Stats.SourcesQueried)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != "emma" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestOperators(t *testing.T) {
	sys := fixture(t)
	gaTitle := gaIndex(t, sys, ref(0, 0))
	cases := []struct {
		op   Op
		val  string
		want int
	}{
		{OpContains, "un", 1}, // dune
		{OpPrefix, "e", 1},    // emma
		{OpEq, "nothing", 0},
	}
	for _, c := range cases {
		res, err := sys.Execute(Query{
			Select: []int{gaTitle},
			Where:  []Predicate{{GA: gaTitle, Op: c.op, Value: c.val}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != c.want {
			t.Errorf("%v %q: rows = %d, want %d", c.op, c.val, len(res.Rows), c.want)
		}
	}
	if OpEq.String() != "=" || OpContains.String() != "contains" || OpPrefix.String() != "prefix" {
		t.Error("Op.String broken")
	}
}

func TestLimit(t *testing.T) {
	sys := fixture(t)
	gaTitle := gaIndex(t, sys, ref(0, 0))
	res, err := sys.Execute(Query{Select: []int{gaTitle}, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("limit ignored: %d rows", len(res.Rows))
	}
}

func TestLatencyStats(t *testing.T) {
	sys := fixture(t)
	gaTitle := gaIndex(t, sys, ref(0, 0))
	res, err := sys.Execute(Query{Select: []int{gaTitle}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxLatency != 300*time.Millisecond {
		t.Errorf("MaxLatency = %v, want 300ms", res.Stats.MaxLatency)
	}
	if res.Stats.TotalLatency != 450*time.Millisecond {
		t.Errorf("TotalLatency = %v, want 450ms", res.Stats.TotalLatency)
	}
	if res.Stats.RowsScanned != 6 {
		t.Errorf("RowsScanned = %d, want 6", res.Stats.RowsScanned)
	}
}

func TestQueryValidation(t *testing.T) {
	sys := fixture(t)
	bad := []Query{
		{},                  // no select
		{Select: []int{99}}, // GA out of range
		{Select: []int{0}, Where: []Predicate{{GA: -1}}},            // where out of range
		{Select: []int{0}, Where: []Predicate{{GA: 0, Op: Op(42)}}}, // bad op
		{Select: []int{0}, Limit: -1},                               // negative limit
	}
	for i, q := range bad {
		if _, err := sys.Execute(q); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	u := source.NewUniverse(pcsa.Config{NumMaps: 64})
	id, _ := u.Add(source.Uncooperative("x", schema.NewSchema("a")))
	med := schema.NewMediated(schema.NewGA(ref(0, 0)))
	tables := map[schema.SourceID]*store.Table{id: store.NewTable(u.Source(id).Schema)}

	if _, err := New(nil, med, nil, nil); err == nil {
		t.Error("nil universe accepted")
	}
	if _, err := New(u, med, []schema.SourceID{5}, tables); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := New(u, med, []schema.SourceID{id}, nil); err == nil {
		t.Error("missing table accepted")
	}
	badTable := map[schema.SourceID]*store.Table{id: store.NewTable(schema.NewSchema("a", "b"))}
	if _, err := New(u, med, []schema.SourceID{id}, badTable); err == nil {
		t.Error("mismatched table arity accepted")
	}
	overlapping := schema.NewMediated(schema.NewGA(ref(0, 0)), schema.NewGA(ref(0, 0), ref(1, 0)))
	if _, err := New(u, overlapping, []schema.SourceID{id}, tables); err == nil {
		t.Error("overlapping mediated schema accepted")
	}
	if _, err := New(u, med, []schema.SourceID{id}, tables); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
}
