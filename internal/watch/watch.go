// Package watch implements µBE's online-integration loop (ROADMAP item 3):
// sources on the open Internet appear, drift, and die, so instead of solving
// a frozen snapshot the watch loop advances a virtual clock in epochs. Each
// tick applies a seeded churn schedule (MTTF-driven deaths, vocabulary
// drift, new-source arrivals from synth.Stream), reprobes the survivors
// under the session's fault plan, folds the result into the universe
// *incrementally* — Remove/UpdateSynopsis/Add keep the arena signatures and
// the subtractable counting-PCSA aggregates consistent instead of
// rebuilding — rebinds the matcher to reuse every similarity already
// computed, and warm-starts the re-solve from the previous epoch's solution.
//
// Determinism contract: the entire loop is a pure function of its Config.
// Time comes from a fault.VirtualClock, randomness from one seeded
// math/rand stream drawn in universe order, fault fates from the injector's
// pure per-(name,attempt,now) hashes, and the solver inherits the
// bit-identical-at-any-worker-count evaluator. The per-epoch DeltaReport
// trace is therefore byte-identical across runs and worker counts.
package watch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"mube/internal/constraint"
	"mube/internal/fault"
	"mube/internal/match"
	"mube/internal/opt"
	"mube/internal/opt/solvers"
	"mube/internal/pcsa"
	"mube/internal/probe"
	"mube/internal/qef"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/synth"
	"mube/internal/telemetry"
)

// Config parameterizes a watch loop.
type Config struct {
	// Universe is the epoch-0 world (required). The loop mutates it in
	// place; hand it a private copy if the caller needs the original.
	Universe *source.Universe
	// Epochs is the number of churn ticks to run (≥ 1).
	Epochs int
	// Seed drives the churn schedule and the per-epoch solver seeds.
	// 0 means 1.
	Seed int64
	// ChurnRate is the expected fraction of sources touched per epoch:
	// half the budget goes to MTTF-weighted deaths (replaced by arrivals),
	// half to vocabulary drift. 0 disables churn; reprobe still runs.
	ChurnRate float64
	// EpochStep is the virtual time between ticks (default 24h) — it sets
	// how far each source moves through its flap schedule between reprobes.
	EpochStep time.Duration

	// Arrivals shapes the sources that replace deaths, via synth.Stream.
	// NumSources, Seed, and NamePrefix are overridden per epoch; Sig
	// defaults to the universe's signature config and must match it.
	Arrivals synth.Config

	// Match, QEFs, Weights, MaxSources, Solver, and Options specify the
	// per-epoch problem exactly as a session would: QEFs defaults to the
	// main QEFs (plus MTTF when any source defines it), Weights to uniform,
	// MaxSources to min(20, N), Solver to "tabu". Options.Seed and
	// Options.Initial are managed by the loop.
	Match      match.Config
	QEFs       []qef.QEF
	Weights    qef.Weights
	MaxSources int
	Solver     string
	Options    opt.Options
	// Constraints is user guidance carried across epochs. A constraint
	// whose source dies is dropped (and counted in the DeltaReport) rather
	// than failing the loop — the user is not there to fix it mid-run.
	Constraints constraint.Set

	// Probe and Faults drive the per-epoch reprobe: every cooperative
	// source runs the retry/breaker state machine against the injected
	// fault plan. The zero plan is a clean network.
	Probe  probe.Policy
	Faults fault.Plan

	// DeltaPool restricts each warm re-solve's optional pool to the carried
	// solution plus the sources this epoch actually touched (arrivals,
	// drift, degradations, recoveries) — the delta re-solve mode. Untouched
	// sources that lost yesterday keep losing today without being
	// re-searched, which is where the warm eval saving comes from; the cold
	// reference always searches the full universe. Off by default: the
	// exhaustive differential (warm best_q == cold best_q) only holds over
	// identical pools.
	DeltaPool bool

	// Clock optionally injects the loop's virtual clock; nil means a fresh
	// clock at the Unix epoch. Inject one to share it with a
	// telemetry.NewClocked recorder, so epoch events carry virtual t_ns.
	Clock *fault.VirtualClock

	// Cold additionally runs the from-scratch reference each epoch — full
	// universe rebuild, cold matcher, cold-started solve — to fill the
	// DeltaReport's ColdQ/ColdEvals fields. This is the differential and
	// benchmark mode; it roughly doubles (and more) the per-epoch cost.
	Cold bool

	// Recorder receives one "watch.epoch" event per tick (nil = off). The
	// loop stamps events with its own virtual clock when the recorder was
	// built with NewClocked on that clock.
	Recorder *telemetry.Recorder
}

// Loop is a running watch session. Not safe for concurrent use; the solver's
// internal evaluation parallelism is configured via Config.Options.Parallel
// as usual.
type Loop struct {
	cfg    Config
	u      *source.Universe
	m      *match.Matcher
	clock  *fault.VirtualClock
	prober *probe.Prober
	rng    *rand.Rand
	solver opt.Solver

	qefs    []qef.QEF
	weights qef.Weights
	cons    constraint.Set
	// prev is the previous epoch's solution in current universe IDs — the
	// warm start.
	prev []schema.SourceID
	// pristine remembers the last-known synopses of degraded sources by
	// name, so a source that recovers across reprobe rounds can be restored
	// without refetching data the loop cannot fetch.
	pristine map[string]pristineSyn
	// touched accumulates the IDs churn altered during the current tick —
	// the warm re-solve's extra candidates in DeltaPool mode.
	touched []schema.SourceID
	mttfRef  float64
	epoch    int
}

// pristineSyn is the cached cooperative form of a currently-degraded source.
type pristineSyn struct {
	card int64
	sig  *pcsa.Signature
}

// Clock exposes the loop's virtual clock — epoch timestamps for recorders
// and tests.
func (l *Loop) Clock() *fault.VirtualClock { return l.clock }

// Universe exposes the loop's (mutating) universe.
func (l *Loop) Universe() *source.Universe { return l.u }

// Epoch returns the number of completed ticks.
func (l *Loop) Epoch() int { return l.epoch }

// New validates cfg and assembles a loop. The virtual clock starts at the
// Unix epoch; the baseline solve has not run yet — Run performs it before
// the first tick.
func New(cfg Config) (*Loop, error) {
	if cfg.Universe == nil {
		return nil, fmt.Errorf("watch: nil universe")
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("watch: epochs %d < 1", cfg.Epochs)
	}
	if cfg.ChurnRate < 0 || cfg.ChurnRate > 1 {
		return nil, fmt.Errorf("watch: churn rate %v out of [0,1]", cfg.ChurnRate)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.EpochStep <= 0 {
		cfg.EpochStep = 24 * time.Hour
	}
	if cfg.Arrivals.Sig == (pcsa.Config{}) {
		cfg.Arrivals.Sig = cfg.Universe.SignatureConfig()
	}
	if cfg.Arrivals.PoolSize == 0 {
		// Caller gave no arrival shape: default to a reduced-scale Books
		// stream (or multi-domain, if only Domains was set) matching the
		// universe's signature config.
		base := synth.Scaled(0.01)
		base.Sig = cfg.Arrivals.Sig
		base.Domains = cfg.Arrivals.Domains
		base.DomainConcepts = cfg.Arrivals.DomainConcepts
		cfg.Arrivals = base
	}
	if cfg.Arrivals.Sig != cfg.Universe.SignatureConfig() {
		return nil, fmt.Errorf("watch: arrival signature config %+v does not match universe", cfg.Arrivals.Sig)
	}
	if cfg.Solver == "" {
		cfg.Solver = "tabu"
	}
	solver, err := solvers.ByName(cfg.Solver)
	if err != nil {
		return nil, err
	}
	qefs := cfg.QEFs
	if qefs == nil {
		qefs = qef.MainQEFs()
		if _, _, ok := cfg.Universe.CharacteristicRange("mttf"); ok {
			qefs = append(qefs, qef.Characteristic{Char: "mttf", Agg: qef.WSum{}})
		}
	}
	weights := cfg.Weights
	if weights == nil {
		weights = qef.Uniform(qefs)
	}
	if err := weights.Validate(qefs); err != nil {
		return nil, err
	}
	if err := cfg.Constraints.Validate(cfg.Universe); err != nil {
		return nil, err
	}
	m, err := match.New(cfg.Universe, cfg.Match)
	if err != nil {
		return nil, err
	}
	plan := cfg.Faults
	if plan.Seed == 0 {
		plan.Seed = cfg.Seed
	}
	clock := cfg.Clock
	if clock == nil {
		clock = fault.NewVirtualClock(time.Unix(0, 0).UTC())
	}
	l := &Loop{
		cfg:      cfg,
		u:        cfg.Universe,
		m:        m,
		clock:    clock,
		prober:   probe.New(cfg.Probe, clock, fault.NewInjector(plan), cfg.Seed),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		solver:   solver,
		qefs:     qefs,
		weights:  weights,
		cons:     cfg.Constraints.Clone(),
		pristine: make(map[string]pristineSyn),
		mttfRef:  meanCharacteristic(cfg.Universe, "mttf"),
	}
	return l, nil
}

// meanCharacteristic returns the mean of the named characteristic over the
// sources that define it, or 0 when none does. Fixed at construction so the
// death schedule's MTTF reference does not wander with churn.
func meanCharacteristic(u *source.Universe, name string) float64 {
	sum, n := 0.0, 0
	for _, s := range u.Sources() {
		if v, ok := s.Characteristic(name); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// problem materializes the current universe, matcher, and constraints as an
// opt.Problem, clamping MaxSources to the shrunken universe when needed.
func (l *Loop) problem() (*opt.Problem, error) {
	quality, err := qef.NewQuality(l.qefs, l.weights)
	if err != nil {
		return nil, err
	}
	maxS := l.cfg.MaxSources
	if maxS == 0 {
		maxS = 20
	}
	if n := l.u.Len(); maxS > n {
		maxS = n
	}
	return &opt.Problem{
		Universe:    l.u,
		Matcher:     l.m,
		Quality:     quality,
		MaxSources:  maxS,
		Constraints: l.cons.Clone(),
	}, nil
}

// solve runs one epoch's solver pass. warm carries the remapped previous
// solution (nil for a cold start); cands, when non-nil, restricts the
// optional pool (DeltaPool mode). The per-epoch seed keeps re-solves
// reproducible yet decorrelated across epochs.
func (l *Loop) solve(ctx context.Context, p *opt.Problem, warm, cands []schema.SourceID) (*opt.Solution, error) {
	opts := l.cfg.Options
	opts.Seed = l.cfg.Seed + int64(l.epoch)*1_000_003 + 1
	opts.Initial = warm
	opts.Candidates = cands
	if len(cands) > 0 && l.u.Len() > 0 {
		// Delta mode: search effort proportional to the pool's share of the
		// universe. A warm re-solve over k of N sources gets k/N of the
		// configured iteration and evaluation budgets (at least one
		// iteration) — restricting the pool without shrinking the budget
		// would just re-sample the same few moves.
		frac := float64(len(cands)) / float64(l.u.Len())
		if frac < 1 {
			if opts.MaxIters > 0 {
				if opts.MaxIters = int(math.Ceil(float64(opts.MaxIters) * frac)); opts.MaxIters < 1 {
					opts.MaxIters = 1
				}
			}
			if opts.MaxEvals > 0 {
				if opts.MaxEvals = int(math.Ceil(float64(opts.MaxEvals) * frac)); opts.MaxEvals < 1 {
					opts.MaxEvals = 1
				}
			}
		}
	}
	if opts.Recorder == nil {
		opts.Recorder = l.cfg.Recorder
	}
	return l.solver.Solve(ctx, p, opts)
}

// deltaPool is the warm re-solve's restricted candidate pool: the carried
// solution plus everything churn touched this tick, deduplicated.
func (l *Loop) deltaPool() []schema.SourceID {
	seen := make(map[schema.SourceID]bool, len(l.prev)+len(l.touched))
	pool := make([]schema.SourceID, 0, len(l.prev)+len(l.touched))
	for _, ids := range [2][]schema.SourceID{l.prev, l.touched} {
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				pool = append(pool, id)
			}
		}
	}
	return pool
}

// Run performs the baseline solve (epoch 0, no churn) followed by
// Config.Epochs churn ticks, returning one DeltaReport per entry —
// reports[0] is the baseline, reports[i] epoch i. It stops early with the
// context's error when ctx is canceled between epochs; the solver itself
// also honors ctx within an epoch and returns best-so-far.
func (l *Loop) Run(ctx context.Context) ([]DeltaReport, error) {
	reports := make([]DeltaReport, 0, l.cfg.Epochs+1)
	base, err := l.baseline(ctx)
	if err != nil {
		return nil, err
	}
	reports = append(reports, base)
	for i := 0; i < l.cfg.Epochs; i++ {
		if err := ctx.Err(); err != nil {
			return reports, err
		}
		rep, err := l.Tick(ctx)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// baseline solves the unchurned universe to seed the warm-start chain.
func (l *Loop) baseline(ctx context.Context) (DeltaReport, error) {
	p, err := l.problem()
	if err != nil {
		return DeltaReport{}, err
	}
	sol, err := l.solve(ctx, p, nil, nil)
	if err != nil {
		return DeltaReport{}, err
	}
	l.prev = sol.IDs
	rep := DeltaReport{
		Epoch:     0,
		Sources:   l.u.Len(),
		QAfter:    sol.Quality,
		WarmEvals: sol.Evals,
		Status:    string(sol.Status),
	}
	if l.cfg.Cold {
		// The baseline has no warm start, so the cold reference is itself.
		rep.ColdQ, rep.ColdEvals = sol.Quality, sol.Evals
	}
	l.emit(rep)
	return rep, nil
}

// Tick advances the virtual clock one epoch and runs the full churn
// pipeline: schedule → reprobe → incremental universe update → constraint
// and warm-start remap → matcher rebind → re-solve.
func (l *Loop) Tick(ctx context.Context) (DeltaReport, error) {
	l.epoch++
	rep := DeltaReport{Epoch: l.epoch}
	l.touched = l.touched[:0]
	l.clock.Sleep(l.cfg.EpochStep)
	// The tick is one span with churn / resolve / cold phase children, so a
	// profile attributes each epoch's cost to the pipeline step that paid it.
	// The deferred End also closes the tick on error returns.
	tick := l.cfg.Recorder.BeginSpan("watch.tick", telemetry.Int("epoch", l.epoch))
	defer tick.End()

	// 1. Seeded churn schedule: MTTF-weighted deaths, one draw per source
	// in ID order.
	churn := l.cfg.Recorder.BeginSpan("watch.churn")
	dead := l.scheduleDeaths()
	rep.Died = len(dead)

	// 2. Health-driven reprobe of the survivors under the fault plan.
	// Breaker trips join the dead; failures degrade in place; previously
	// degraded sources whose outage ended are restored from their cached
	// synopses.
	rsp := l.cfg.Recorder.BeginSpan("watch.reprobe", telemetry.Int("sources", l.u.Len()))
	dead = l.reprobe(dead, &rep)
	rsp.End(telemetry.Int("dropped", rep.Dropped),
		telemetry.Int("degraded", rep.Degraded),
		telemetry.Int("recovered", rep.Recovered))

	// 3. Incremental removal: one compaction, one kept list; constraints
	// and the warm start follow their sources to the new IDs.
	if len(dead) > 0 {
		kept, err := l.u.Remove(dead)
		if err != nil {
			churn.End()
			return rep, fmt.Errorf("watch: epoch %d remove: %w", l.epoch, err)
		}
		rep.ConstraintsDropped = l.remapConstraints(kept)
		l.prev = remapIDs(l.prev, kept)
		l.touched = remapIDs(l.touched, kept)
	}

	// 4. Vocabulary drift on surviving cooperative sources.
	if err := l.scheduleDrift(&rep); err != nil {
		churn.End()
		return rep, err
	}

	// 5. Arrivals replace the dead, keeping N roughly stable.
	if err := l.scheduleArrivals(len(dead), &rep); err != nil {
		churn.End()
		return rep, err
	}
	l.u.Precompute()
	rep.Sources = l.u.Len()
	churn.End(telemetry.Int("died", rep.Died),
		telemetry.Int("arrived", rep.Arrived),
		telemetry.Int("sources", rep.Sources))

	// 6. Rebind the matcher: reuse every similarity already computed, score
	// only genuinely new names.
	resolve := l.cfg.Recorder.BeginSpan("watch.resolve", telemetry.Bool("delta_pool", l.cfg.DeltaPool))
	m, err := l.m.Rebind(l.u)
	if err != nil {
		resolve.End()
		return rep, fmt.Errorf("watch: epoch %d rebind: %w", l.epoch, err)
	}
	l.m = m

	// 7. Re-score the previous solution on the churned world, then
	// warm-start the re-solve from it.
	p, err := l.problem()
	if err != nil {
		resolve.End()
		return rep, err
	}
	if len(l.prev) > 0 {
		if rep.QBefore, err = opt.Score(p, l.prev); err != nil {
			resolve.End()
			return rep, err
		}
	}
	var cands []schema.SourceID
	if l.cfg.DeltaPool {
		cands = l.deltaPool()
	}
	sol, err := l.solve(ctx, p, l.prev, cands)
	if err != nil {
		resolve.End()
		return rep, err
	}
	rep.QAfter, rep.WarmEvals, rep.Status = sol.Quality, sol.Evals, string(sol.Status)
	l.prev = sol.IDs
	resolve.End(telemetry.Float("q_after", rep.QAfter), telemetry.Int("warm_evals", rep.WarmEvals))

	// 8. Optional from-scratch reference: rebuild the universe and matcher
	// cold, solve without a warm start, same seed.
	if l.cfg.Cold {
		csp := l.cfg.Recorder.BeginSpan("watch.cold")
		if err := l.coldReference(ctx, &rep); err != nil {
			csp.End()
			return rep, err
		}
		csp.End(telemetry.Float("cold_q", rep.ColdQ), telemetry.Int("cold_evals", rep.ColdEvals))
	}
	l.emit(rep)
	return rep, nil
}

// coldReference rebuilds the epoch's universe from scratch (fresh arena,
// fresh aggregates, cold matcher) and solves without a warm start — the
// reference the incremental path must match on quality and beat on evals.
func (l *Loop) coldReference(ctx context.Context, rep *DeltaReport) error {
	nu := source.NewUniverse(l.u.SignatureConfig())
	for _, s := range l.u.Sources() {
		c := *s
		if _, err := nu.Add(&c); err != nil {
			return fmt.Errorf("watch: cold rebuild: %w", err)
		}
	}
	nu.Precompute()
	cm, err := match.New(nu, l.cfg.Match)
	if err != nil {
		return err
	}
	quality, err := qef.NewQuality(l.qefs, l.weights)
	if err != nil {
		return err
	}
	maxS := l.cfg.MaxSources
	if maxS == 0 {
		maxS = 20
	}
	if n := nu.Len(); maxS > n {
		maxS = n
	}
	p := &opt.Problem{
		Universe:    nu,
		Matcher:     cm,
		Quality:     quality,
		MaxSources:  maxS,
		Constraints: l.cons.Clone(), // IDs align: the rebuild preserves order
	}
	sol, err := l.solve(ctx, p, nil, nil)
	if err != nil {
		return err
	}
	rep.ColdQ, rep.ColdEvals = sol.Quality, sol.Evals
	return nil
}

// remapConstraints rewrites the carried constraints for the kept-ID list,
// dropping (and counting) any constraint that referenced a dead source —
// per-constraint, so one casualty does not discard the rest of the user's
// guidance.
func (l *Loop) remapConstraints(kept []schema.SourceID) int {
	dropped := 0
	next := constraint.Set{}
	for _, id := range l.cons.Sources {
		one := constraint.Set{Sources: []schema.SourceID{id}}
		if m, err := one.Remap(kept); err == nil {
			next.Sources = append(next.Sources, m.Sources[0])
		} else {
			dropped++
		}
	}
	for _, g := range l.cons.GAs {
		one := constraint.Set{GAs: []schema.GA{g}}
		if m, err := one.Remap(kept); err == nil {
			next.GAs = append(next.GAs, m.GAs[0])
		} else {
			dropped++
		}
	}
	l.cons = next
	return dropped
}

// remapIDs filters-and-renumbers a source-ID list through kept
// (kept[newID] == oldID); members that died are dropped.
func remapIDs(ids []schema.SourceID, kept []schema.SourceID) []schema.SourceID {
	oldToNew := make(map[schema.SourceID]schema.SourceID, len(kept))
	for newID, oldID := range kept {
		oldToNew[oldID] = schema.SourceID(newID)
	}
	out := make([]schema.SourceID, 0, len(ids))
	for _, id := range ids {
		if nid, ok := oldToNew[id]; ok {
			out = append(out, nid)
		}
	}
	return out
}
