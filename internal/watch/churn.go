// Churn scheduling: which sources die, drift, recover, and arrive each
// epoch. All randomness comes from the loop's single seeded stream, drawn in
// universe ID order, so the schedule is a pure function of (Config, epoch).
package watch

import (
	"fmt"

	"mube/internal/pcsa"
	"mube/internal/probe"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/synth"
)

// pDie is a source's per-epoch death probability: half the churn budget,
// weighted by the universe's mean MTTF over the source's own — short-lived
// sources die proportionally more often, matching the MTTF characteristic
// the synthesizer assigns (§5).
func (l *Loop) pDie(s *source.Source) float64 {
	p := l.cfg.ChurnRate * 0.5
	if l.mttfRef > 0 {
		if mttf, ok := s.Characteristic("mttf"); ok && mttf > 0 {
			p *= l.mttfRef / mttf
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}

// scheduleDeaths draws the epoch's deaths: one Float64 per source, ID order.
func (l *Loop) scheduleDeaths() []schema.SourceID {
	var dead []schema.SourceID
	for _, s := range l.u.Sources() {
		if l.rng.Float64() < l.pDie(s) {
			dead = append(dead, s.ID)
		}
	}
	return dead
}

// reprobe runs the retry/breaker state machine over every source that is not
// already scheduled to die: cooperative sources that trip the breaker join
// the dead, ones that exhaust their attempts degrade in place (their
// synopses cached for later recovery), and previously-degraded sources whose
// outage has passed are restored. Returns the extended dead list.
func (l *Loop) reprobe(dead []schema.SourceID, rep *DeltaReport) []schema.SourceID {
	deadSet := make(map[schema.SourceID]bool, len(dead))
	for _, id := range dead {
		deadSet[id] = true
	}
	for _, s := range l.u.Sources() {
		if deadSet[s.ID] {
			continue
		}
		if s.Cooperative() {
			got, res := l.prober.ReprobeOne(s)
			switch res.Status {
			case probe.StatusDropped:
				dead = append(dead, s.ID)
				rep.Dropped++
			case probe.StatusDegraded:
				// Cache the synopses before they are wiped; the signature
				// words live in the universe's arena and stay valid.
				l.pristine[s.Name] = pristineSyn{card: s.Cardinality, sig: s.Signature}
				if err := l.u.Degrade(s.ID); err != nil {
					panic(fmt.Sprintf("watch: degrade %q: %v", s.Name, err))
				}
				l.touched = append(l.touched, s.ID)
				rep.Degraded++
			}
			_ = got // fates only; the synopsis is already cached
			continue
		}
		// Degraded earlier in this run? Probe for recovery with its cached
		// cooperative form (the breaker state is per-round, so a clean
		// outage window re-admits it on the first attempt).
		pr, ok := l.pristine[s.Name]
		if !ok {
			continue // uncooperative by nature, nothing to recover
		}
		trial := &source.Source{ID: -1, Name: s.Name, Schema: s.Schema, Cardinality: pr.card, Signature: pr.sig}
		got, res := l.prober.ReprobeOne(trial)
		switch res.Status {
		case probe.StatusHealthy:
			if err := l.u.UpdateSynopsis(s.ID, pr.card, pr.sig); err != nil {
				panic(fmt.Sprintf("watch: restore %q: %v", s.Name, err))
			}
			delete(l.pristine, s.Name)
			l.touched = append(l.touched, s.ID)
			rep.Recovered++
		case probe.StatusDropped:
			dead = append(dead, s.ID)
			delete(l.pristine, s.Name)
			rep.Dropped++
		}
		_ = got
	}
	return dead
}

// scheduleDrift re-synthesizes the vocabulary of surviving cooperative
// sources with probability ChurnRate/2 each: a fresh signature over a
// shifted tuple range and a ±20% cardinality move, applied in place via
// UpdateSynopsis so IDs (and any constraints on them) are untouched.
func (l *Loop) scheduleDrift(rep *DeltaReport) error {
	for _, s := range l.u.Sources() {
		if !s.Cooperative() {
			continue
		}
		if l.rng.Float64() >= l.cfg.ChurnRate*0.5 {
			continue
		}
		card := s.Cardinality
		if card < 1 {
			card = 1
		}
		nc := int64(float64(card) * (0.8 + 0.4*l.rng.Float64()))
		if nc < 1 {
			nc = 1
		}
		base := l.rng.Uint64() >> 1
		sig, err := pcsa.New(l.u.SignatureConfig())
		if err != nil {
			return fmt.Errorf("watch: drift %q: %w", s.Name, err)
		}
		for i := uint64(0); i < uint64(nc); i++ {
			sig.AddUint64(base + i)
		}
		if err := l.u.UpdateSynopsis(s.ID, nc, sig); err != nil {
			return fmt.Errorf("watch: drift %q: %w", s.Name, err)
		}
		l.touched = append(l.touched, s.ID)
		rep.Drifted++
	}
	return nil
}

// scheduleArrivals streams n new sources into the universe — the open
// Internet replaces what it loses. Arrivals get an epoch-unique name prefix
// (name formatting draws nothing from synth's RNG, so the prefix cannot
// perturb generation) and a per-epoch stream seed.
func (l *Loop) scheduleArrivals(n int, rep *DeltaReport) error {
	if n == 0 {
		return nil
	}
	cfg := l.cfg.Arrivals
	cfg.NumSources = n
	cfg.Seed = l.cfg.Seed + int64(l.epoch)*2_000_003
	cfg.NamePrefix = fmt.Sprintf("e%03d-", l.epoch)
	err := synth.Stream(cfg, func(s *source.Source, _ synth.SourceMeta) error {
		id, err := l.u.Add(s)
		if err != nil {
			return err
		}
		l.touched = append(l.touched, id)
		rep.Arrived++
		return nil
	})
	if err != nil {
		return fmt.Errorf("watch: epoch %d arrivals: %w", l.epoch, err)
	}
	return nil
}
