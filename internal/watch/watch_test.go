package watch

import (
	"bytes"
	"context"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mube/internal/constraint"
	"mube/internal/fault"
	"mube/internal/opt"
	"mube/internal/pcsa"
	"mube/internal/probe"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/synth"
	"mube/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_trace.jsonl")

// tinyArrivals is the arrival stream shape shared by every watch test: a
// reduced-scale Books universe whose signature config matches tinyUniverse.
func tinyArrivals() synth.Config {
	cfg := synth.Scaled(0.002)
	cfg.Sig = pcsa.Config{NumMaps: 64}
	return cfg
}

// tinyUniverse generates a small synthetic epoch-0 world. Each call returns a
// fresh universe — the loop mutates it in place.
func tinyUniverse(t testing.TB, n int, seed int64) *source.Universe {
	t.Helper()
	cfg := tinyArrivals()
	cfg.NumSources = n
	cfg.Seed = seed
	u, err := synth.GenerateUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// goldenConfig is the fixed churn scenario the golden trace was recorded
// from: 14 sources, 50 epochs at 20% churn under a flapping fault plan.
func goldenConfig(t testing.TB, workers int) Config {
	return Config{
		Universe:   tinyUniverse(t, 14, 5),
		Epochs:     50,
		Seed:       7,
		ChurnRate:  0.2,
		Arrivals:   tinyArrivals(),
		MaxSources: 5,
		Solver:     "tabu",
		Options: opt.Options{
			MaxEvals: 150,
			MaxIters: 6,
			Patience: 3,
			Parallel: workers,
			// Keep solver events out of the watch trace: the golden file
			// pins watch.epoch lines only.
			Recorder: telemetry.New(nil),
		},
		Probe:  probe.Policy{MaxAttempts: 3, BreakerLimit: 2},
		Faults: fault.Plan{Rate: 0.3, HandshakeFrac: 0.3, Latency: 50 * time.Millisecond, FlapPeriod: 6 * time.Hour, FlapDuty: 0.15},
	}
}

// goldenRun executes the golden scenario and returns its JSONL trace bytes.
func goldenRun(t *testing.T, workers int) ([]byte, []DeltaReport) {
	t.Helper()
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	clk := fault.NewVirtualClock(time.Unix(0, 0).UTC())
	cfg := goldenConfig(t, workers)
	cfg.Clock = clk
	cfg.Recorder = telemetry.NewClocked(sink, clk)
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := l.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if len(reports) != cfg.Epochs+1 {
		t.Fatalf("got %d reports, want %d", len(reports), cfg.Epochs+1)
	}
	return buf.Bytes(), reports
}

// TestGoldenChurnTrace pins the 50-epoch churn run byte for byte: the same
// Config must reproduce the checked-in DeltaReport trace exactly, at one
// evaluator worker and at four. Any intentional change to the schedule, the
// event attributes, or float formatting must regenerate the golden file with
// `go test ./internal/watch -run GoldenChurnTrace -update` and show up in
// review.
func TestGoldenChurnTrace(t *testing.T) {
	got, reports := goldenRun(t, 1)
	golden := filepath.Join("testdata", "golden_trace.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace diverged from golden (run with -update if intentional)\ngot:\n%s\nwant:\n%s", got, want)
	}
	if par, _ := goldenRun(t, 4); !bytes.Equal(par, want) {
		t.Errorf("trace at 4 workers diverged from golden\ngot:\n%s", par)
	}

	// The run must actually exercise churn: over 50 epochs at 20% some
	// sources die, some degrade, and arrivals replace the dead.
	var died, degraded, arrived int
	for _, r := range reports {
		died += r.Died + r.Dropped
		degraded += r.Degraded
		arrived += r.Arrived
	}
	if died == 0 || arrived == 0 {
		t.Errorf("golden scenario saw no deaths (%d) or arrivals (%d); churn not exercised", died, arrived)
	}
	if degraded == 0 {
		t.Errorf("golden scenario saw no degradations; fault plan not exercised")
	}
}

// TestRunDeterministicAcrossRuns re-runs the golden scenario from scratch and
// requires the full report slice — floats included — to be identical.
func TestRunDeterministicAcrossRuns(t *testing.T) {
	_, a := goldenRun(t, 1)
	_, b := goldenRun(t, 1)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("reports differ across identical runs:\n%v\nvs\n%v", a, b)
	}
}

// TestWarmMatchesColdDifferential is the incremental-correctness check: with
// the exhaustive solver, the warm re-solve over the incrementally-updated
// universe must land on exactly the same best quality as a from-scratch
// rebuild + cold solve of the same epoch — bit for bit. Any drift between
// Remove/UpdateSynopsis/Add + Rebind and the rebuilt world shows up here.
func TestWarmMatchesColdDifferential(t *testing.T) {
	cfg := Config{
		Universe:   tinyUniverse(t, 8, 11),
		Epochs:     6,
		Seed:       3,
		ChurnRate:  0.3,
		Arrivals:   tinyArrivals(),
		MaxSources: 3,
		Solver:     "exhaustive",
		Cold:       true,
		Probe:      probe.Policy{MaxAttempts: 3, BreakerLimit: 2},
		Faults:     fault.Plan{Rate: 0.2, HandshakeFrac: 0.5, FlapPeriod: 8 * time.Hour, FlapDuty: 0.25},
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := l.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	baseQ := reports[0].QAfter
	for _, r := range reports {
		//mube:vet-ignore floatcmp — the differential contract is bit-identical, not approximate
		if math.Float64bits(r.QAfter) != math.Float64bits(r.ColdQ) {
			t.Errorf("epoch %d: warm q=%v != cold q=%v (incremental universe diverged from rebuild)",
				r.Epoch, r.QAfter, r.ColdQ)
		}
		if r.ColdEvals == 0 || r.WarmEvals == 0 {
			t.Errorf("epoch %d: missing eval counts: warm=%d cold=%d", r.Epoch, r.WarmEvals, r.ColdEvals)
		}
		if rec := r.QRecovery(baseQ); rec < 0 || rec > 1 {
			t.Errorf("epoch %d: QRecovery = %v out of [0,1]", r.Epoch, rec)
		}
	}
}

// TestChurnSoak hammers the loop at high churn with a parallel evaluator —
// the -race soak target. The invariants are structural: the universe never
// empties, IDs stay dense, the warm re-solve never lands below the carried
// solution it started from, and the virtual clock advances by at least one
// EpochStep per tick.
func TestChurnSoak(t *testing.T) {
	epochs := 40
	if testing.Short() {
		epochs = 8
	}
	cfg := Config{
		Universe:   tinyUniverse(t, 12, 17),
		Epochs:     epochs,
		Seed:       13,
		ChurnRate:  0.4,
		Arrivals:   tinyArrivals(),
		MaxSources: 4,
		Options:    opt.Options{MaxEvals: 120, MaxIters: 5, Patience: 3, Parallel: 4},
		Probe:      probe.Policy{MaxAttempts: 2, BreakerLimit: 2},
		Faults:     fault.Plan{Rate: 0.25, HandshakeFrac: 0.6, Latency: 20 * time.Millisecond, FlapPeriod: 3 * time.Hour, FlapDuty: 0.3},
		Constraints: constraint.Set{
			Sources: []schema.SourceID{0, 1},
		},
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := l.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch() != epochs {
		t.Errorf("Epoch() = %d, want %d", l.Epoch(), epochs)
	}
	dropped := 0
	for _, r := range reports {
		if r.Sources <= 0 {
			t.Fatalf("epoch %d: universe emptied", r.Epoch)
		}
		if r.QAfter < r.QBefore {
			t.Errorf("epoch %d: warm solve q=%v below its own start %v", r.Epoch, r.QAfter, r.QBefore)
		}
		dropped += r.ConstraintsDropped
	}
	// Constraints either survived (remapped to live IDs) or were dropped and
	// counted; the carried set must still validate against the final world.
	if got := dropped + len(l.cons.Sources); got != 2 {
		t.Errorf("dropped(%d) + surviving(%d) constraints = %d, want 2", dropped, len(l.cons.Sources), got)
	}
	if err := l.cons.Validate(l.u); err != nil {
		t.Errorf("carried constraints invalid on final universe: %v", err)
	}
	// IDs must be dense after all the Remove compactions.
	for i, s := range l.u.Sources() {
		if int(s.ID) != i {
			t.Fatalf("non-dense ID after churn: sources[%d].ID = %d", i, s.ID)
		}
	}
	if min := time.Unix(0, 0).UTC().Add(time.Duration(epochs) * 24 * time.Hour); l.Clock().Now().Before(min) {
		t.Errorf("virtual clock %v did not advance past %v", l.Clock().Now(), min)
	}
}

// TestDeltaPoolSavesEvals runs the golden scenario in delta-pool mode with
// the cold reference alongside: the warm re-solves must spend under half the
// cold evals in total while holding quality near the full-pool result.
func TestDeltaPoolSavesEvals(t *testing.T) {
	cfg := goldenConfig(t, 1)
	cfg.Epochs = 12
	cfg.Cold = true
	cfg.DeltaPool = true
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := l.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var warm, cold int
	for _, r := range reports[1:] {
		warm += r.WarmEvals
		cold += r.ColdEvals
		if r.QAfter < r.QBefore {
			t.Errorf("epoch %d: delta-pool solve q=%v below its start %v", r.Epoch, r.QAfter, r.QBefore)
		}
		if r.QAfter < 0.8*r.ColdQ {
			t.Errorf("epoch %d: delta-pool q=%v collapsed vs cold %v", r.Epoch, r.QAfter, r.ColdQ)
		}
	}
	if cold == 0 || float64(warm) >= 0.5*float64(cold) {
		t.Errorf("warm evals %d not under half of cold %d (frac %.3f)", warm, cold, float64(warm)/float64(cold))
	}
}

// TestRunHonorsContext cancels between epochs and expects a truncated report
// slice plus the context error.
func TestRunHonorsContext(t *testing.T) {
	cfg := goldenConfig(t, 1)
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reports, err := l.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(reports) != 1 {
		t.Errorf("got %d reports after immediate cancel, want just the baseline", len(reports))
	}
}

// TestNewValidation exercises every Config rejection path.
func TestNewValidation(t *testing.T) {
	u := tinyUniverse(t, 4, 2)
	base := Config{Universe: u, Epochs: 3, Arrivals: tinyArrivals()}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil universe", func(c *Config) { c.Universe = nil }},
		{"zero epochs", func(c *Config) { c.Epochs = 0 }},
		{"negative churn", func(c *Config) { c.ChurnRate = -0.1 }},
		{"churn above one", func(c *Config) { c.ChurnRate = 1.5 }},
		{"unknown solver", func(c *Config) { c.Solver = "annealing-deluxe" }},
		{"mismatched arrival sig", func(c *Config) { c.Arrivals.Sig = pcsa.Config{NumMaps: 128} }},
		{"constraint out of range", func(c *Config) {
			c.Constraints = constraint.Set{Sources: []schema.SourceID{99}}
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := New(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestDeltaReportMath unit-checks the two derived ratios.
func TestDeltaReportMath(t *testing.T) {
	r := DeltaReport{QBefore: 0.4, QAfter: 0.55, WarmEvals: 30, ColdEvals: 120}
	if got := r.QRecovery(0.6); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("QRecovery = %v, want 0.75", got)
	}
	if got := r.QRecovery(0.4); math.Float64bits(got) != math.Float64bits(1) {
		t.Errorf("QRecovery with nothing lost = %v, want 1", got)
	}
	if got := r.QRecovery(2.0); got < 0 || got > 1 {
		t.Errorf("QRecovery not clamped: %v", got)
	}
	if got := r.WarmFrac(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("WarmFrac = %v, want 0.25", got)
	}
	if got := (DeltaReport{WarmEvals: 5}).WarmFrac(); got != 0 {
		t.Errorf("WarmFrac without cold reference = %v, want 0", got)
	}
	if s := r.String(); s == "" {
		t.Error("empty String()")
	}
}
