package watch

import (
	"fmt"

	"mube/internal/telemetry"
)

// DeltaReport is the per-epoch account of what churn did and what it cost to
// recover: report[0] is the baseline solve, every later entry one tick.
type DeltaReport struct {
	// Epoch numbers the tick; 0 is the baseline solve on the unchurned
	// universe.
	Epoch int
	// Sources is the universe size after the tick.
	Sources int
	// Died counts schedule deaths (MTTF-weighted), Dropped breaker trips
	// during reprobe, Degraded demotions to uncooperative, Recovered
	// restorations of previously-degraded sources, Drifted vocabulary
	// drifts, Arrived new sources.
	Died, Dropped, Degraded, Recovered, Drifted, Arrived int
	// ConstraintsDropped counts user constraints discarded because a source
	// they referenced left the universe.
	ConstraintsDropped int
	// QBefore is the previous epoch's solution re-scored on the churned
	// universe — how much quality the churn itself destroyed. QAfter is the
	// warm re-solve's best. QBefore is 0 on the baseline (nothing to
	// re-score) and for an infeasible carried solution.
	QBefore, QAfter float64
	// WarmEvals is the evaluation count the warm re-solve spent; ColdEvals
	// and ColdQ are the rebuild+cold-solve reference (0 unless Config.Cold).
	WarmEvals, ColdEvals int
	ColdQ                float64
	// Status is the warm solve's termination status.
	Status string
}

// QRecovery reports how much of the churn-destroyed quality the re-solve won
// back: (QAfter−QBefore)/(baselineQ−QBefore) clamped to [0,1], with 1 when
// nothing was destroyed. baselineQ is typically reports[0].QAfter.
func (r DeltaReport) QRecovery(baselineQ float64) float64 {
	lost := baselineQ - r.QBefore
	if lost <= 0 {
		return 1
	}
	rec := (r.QAfter - r.QBefore) / lost
	if rec < 0 {
		return 0
	}
	if rec > 1 {
		return 1
	}
	return rec
}

// WarmFrac is WarmEvals/ColdEvals, the headline warm-start saving; 0 when no
// cold reference ran.
func (r DeltaReport) WarmFrac() float64 {
	if r.ColdEvals == 0 {
		return 0
	}
	return float64(r.WarmEvals) / float64(r.ColdEvals)
}

// String renders one epoch line for CLI output.
func (r DeltaReport) String() string {
	s := fmt.Sprintf("epoch %3d: n=%d q=%.6f (before %.6f) evals=%d",
		r.Epoch, r.Sources, r.QAfter, r.QBefore, r.WarmEvals)
	if r.ColdEvals > 0 {
		s += fmt.Sprintf(" cold_q=%.6f cold_evals=%d warm_frac=%.3f", r.ColdQ, r.ColdEvals, r.WarmFrac())
	}
	s += fmt.Sprintf(" [died=%d dropped=%d degraded=%d recovered=%d drifted=%d arrived=%d",
		r.Died, r.Dropped, r.Degraded, r.Recovered, r.Drifted, r.Arrived)
	if r.ConstraintsDropped > 0 {
		s += fmt.Sprintf(" cons_dropped=%d", r.ConstraintsDropped)
	}
	return s + "] " + r.Status
}

// emit writes the epoch event to the configured recorder. Called only from
// the loop goroutine — the telemetry contract that keeps traces
// byte-identical at any evaluator worker count.
func (l *Loop) emit(r DeltaReport) {
	l.cfg.Recorder.Emit("watch.epoch",
		telemetry.Int("epoch", r.Epoch),
		telemetry.Int("sources", r.Sources),
		telemetry.Int("died", r.Died),
		telemetry.Int("dropped", r.Dropped),
		telemetry.Int("degraded", r.Degraded),
		telemetry.Int("recovered", r.Recovered),
		telemetry.Int("drifted", r.Drifted),
		telemetry.Int("arrived", r.Arrived),
		telemetry.Int("cons_dropped", r.ConstraintsDropped),
		telemetry.Float("q_before", r.QBefore),
		telemetry.Float("q_after", r.QAfter),
		telemetry.Int("warm_evals", r.WarmEvals),
		telemetry.Float("cold_q", r.ColdQ),
		telemetry.Int("cold_evals", r.ColdEvals),
		telemetry.Str("status", r.Status),
	)
}
