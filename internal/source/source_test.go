package source

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/testutil/approx"
)

var testCfg = pcsa.Config{NumMaps: 64}

// makeSource builds a cooperative source over tuples [lo, hi).
func makeSource(t *testing.T, name string, lo, hi uint64, attrs ...string) *Source {
	t.Helper()
	tuples := make([]TupleID, 0, hi-lo)
	for x := lo; x < hi; x++ {
		tuples = append(tuples, x)
	}
	s, err := FromTuples(name, schema.NewSchema(attrs...), NewSliceIterator(tuples), testCfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFromTuples(t *testing.T) {
	s := makeSource(t, "a", 0, 5000, "title", "author")
	if !s.Cooperative() {
		t.Error("FromTuples source should be cooperative")
	}
	if s.Cardinality != 5000 {
		t.Errorf("Cardinality = %d, want 5000", s.Cardinality)
	}
	est := s.Signature.Estimate()
	if math.Abs(est-5000)/5000 > 0.25 {
		t.Errorf("signature estimate %v too far from 5000", est)
	}
}

func TestUncooperative(t *testing.T) {
	s := Uncooperative("u", schema.NewSchema("keyword"))
	if s.Cooperative() {
		t.Error("Uncooperative source reports Cooperative")
	}
	if s.Cardinality != -1 || s.Signature != nil {
		t.Error("Uncooperative source should hide data characteristics")
	}
}

func TestUniverseAddAssignsIDs(t *testing.T) {
	u := NewUniverse(testCfg)
	for i := 0; i < 3; i++ {
		id, err := u.Add(makeSource(t, "s", 0, 100, "a"))
		if err != nil {
			t.Fatal(err)
		}
		if int(id) != i {
			t.Errorf("id = %d, want %d", id, i)
		}
	}
	if u.Len() != 3 {
		t.Errorf("Len = %d", u.Len())
	}
}

func TestUniverseRejectsMismatchedSignature(t *testing.T) {
	u := NewUniverse(pcsa.Config{NumMaps: 128})
	s := makeSource(t, "bad", 0, 10, "a") // built with testCfg (64 maps)
	if _, err := u.Add(s); err != ErrSignatureConfig {
		t.Errorf("expected ErrSignatureConfig, got %v", err)
	}
}

func TestTotalCardinalityAndUnion(t *testing.T) {
	u := NewUniverse(testCfg)
	mustAdd(t, u, makeSource(t, "a", 0, 10000, "x"))
	mustAdd(t, u, makeSource(t, "b", 5000, 15000, "y")) // overlaps a by 5000
	mustAdd(t, u, Uncooperative("c", schema.NewSchema("z")))

	if got := u.TotalCardinality(); got != 20000 {
		t.Errorf("TotalCardinality = %d, want 20000", got)
	}
	est := u.UnionAllEstimate()
	if math.Abs(est-15000)/15000 > 0.20 {
		t.Errorf("UnionAllEstimate = %v, want ≈15000", est)
	}
	// Union of a subset.
	sub := u.UnionEstimate([]schema.SourceID{0, 1})
	if !approx.AlmostEqual(sub, est) {
		t.Errorf("subset union %v should equal all-cooperative union %v", sub, est)
	}
	// Union over only uncooperative sources is 0.
	if got := u.UnionEstimate([]schema.SourceID{2}); got != 0 {
		t.Errorf("uncooperative union = %v, want 0", got)
	}
	if got := u.SumCardinality([]schema.SourceID{0, 2}); got != 10000 {
		t.Errorf("SumCardinality = %d, want 10000", got)
	}
}

func TestAggregatesInvalidatedByAdd(t *testing.T) {
	u := NewUniverse(testCfg)
	mustAdd(t, u, makeSource(t, "a", 0, 1000, "x"))
	before := u.TotalCardinality()
	mustAdd(t, u, makeSource(t, "b", 1000, 3000, "y"))
	after := u.TotalCardinality()
	if after != before+2000 {
		t.Errorf("TotalCardinality not invalidated: before=%d after=%d", before, after)
	}
}

func TestCharacteristicRange(t *testing.T) {
	u := NewUniverse(testCfg)
	a := Uncooperative("a", schema.NewSchema("x"))
	a.SetCharacteristic("mttf", 50)
	b := Uncooperative("b", schema.NewSchema("y"))
	b.SetCharacteristic("mttf", 150)
	b.SetCharacteristic("fees", 3)
	mustAdd(t, u, a)
	mustAdd(t, u, b)

	min, max, ok := u.CharacteristicRange("mttf")
	if !ok || !approx.AlmostEqual(min, 50) || !approx.AlmostEqual(max, 150) {
		t.Errorf("mttf range = (%v,%v,%v), want (50,150,true)", min, max, ok)
	}
	if _, _, ok := u.CharacteristicRange("latency"); ok {
		t.Error("undefined characteristic should report ok=false")
	}
	names := u.CharacteristicNames()
	if len(names) != 2 || names[0] != "fees" || names[1] != "mttf" {
		t.Errorf("CharacteristicNames = %v", names)
	}
	// Memoized second call returns the same.
	min2, max2, _ := u.CharacteristicRange("mttf")
	if !approx.AlmostEqual(min2, min) || !approx.AlmostEqual(max2, max) {
		t.Error("memoized range differs")
	}
}

func TestAttrName(t *testing.T) {
	u := NewUniverse(testCfg)
	mustAdd(t, u, Uncooperative("a", schema.NewSchema("title", "author")))
	got := u.AttrName(schema.AttrRef{Source: 0, Attr: 1})
	if got != "author" {
		t.Errorf("AttrName = %q", got)
	}
	if u.NumAttrs() != 2 {
		t.Errorf("NumAttrs = %d", u.NumAttrs())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	u := NewUniverse(testCfg)
	a := makeSource(t, "coop", 0, 2000, "title", "author")
	a.SetCharacteristic("mttf", 93.5)
	mustAdd(t, u, a)
	mustAdd(t, u, Uncooperative("shy", schema.NewSchema("keyword")))

	var buf bytes.Buffer
	if err := u.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round-trip Len = %d", back.Len())
	}
	s0, s1 := back.Source(0), back.Source(1)
	if s0.Name != "coop" || s0.Cardinality != 2000 || !s0.Cooperative() {
		t.Errorf("source 0 mangled: %+v", s0)
	}
	if got := s0.Characteristics["mttf"]; !approx.AlmostEqual(got, 93.5) {
		t.Errorf("mttf = %v", got)
	}
	if !approx.AlmostEqual(s0.Signature.Estimate(), a.Signature.Estimate()) {
		t.Error("signature estimate changed in round trip")
	}
	if s1.Cooperative() {
		t.Error("source 1 should stay uncooperative")
	}
	if s1.Schema.Name(0) != "keyword" {
		t.Errorf("schema mangled: %v", s1.Schema)
	}
	if back.SignatureConfig() != testCfg {
		t.Errorf("config = %+v", back.SignatureConfig())
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nonsense")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"sig_num_maps":64,"sources":[{"name":"x","attrs":["a"],"signature":"!!!"}]}`)); err == nil {
		t.Error("bad base64 accepted")
	}
}

func TestUnionEstimateRandomizedMatchesExact(t *testing.T) {
	// Randomized check: union estimates stay within 25% of exact distinct
	// counts for modest sets (64 bitmaps → SE ≈ 10%).
	r := rand.New(rand.NewSource(9))
	u := NewUniverse(testCfg)
	exact := make([]*pcsa.ExactCounter, 4)
	for i := 0; i < 4; i++ {
		n := 2000 + r.Intn(8000)
		tuples := make([]TupleID, n)
		exact[i] = pcsa.NewExact()
		for j := range tuples {
			x := uint64(r.Intn(20000))
			tuples[j] = x
			exact[i].AddUint64(x)
		}
		s, err := FromTuples("s", schema.NewSchema("a"), NewSliceIterator(tuples), testCfg)
		if err != nil {
			t.Fatal(err)
		}
		mustAdd(t, u, s)
	}
	all := pcsa.NewExact()
	for _, e := range exact {
		all.MergeFrom(e)
	}
	est := u.UnionEstimate(u.IDs())
	got, want := est, float64(all.Count())
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("union estimate %v vs exact %v", got, want)
	}
}

// mustAdd adds s to u, failing the test on any error so a bad fixture is
// loud instead of corrupting downstream assertions.
func mustAdd(t testing.TB, u *Universe, s *Source) {
	t.Helper()
	if _, err := u.Add(s); err != nil {
		t.Fatal(err)
	}
}
