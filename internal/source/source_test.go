package source

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/testutil/approx"
)

var testCfg = pcsa.Config{NumMaps: 64}

// makeSource builds a cooperative source over tuples [lo, hi).
func makeSource(t *testing.T, name string, lo, hi uint64, attrs ...string) *Source {
	t.Helper()
	tuples := make([]TupleID, 0, hi-lo)
	for x := lo; x < hi; x++ {
		tuples = append(tuples, x)
	}
	s, err := FromTuples(name, schema.NewSchema(attrs...), NewSliceIterator(tuples), testCfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFromTuples(t *testing.T) {
	s := makeSource(t, "a", 0, 5000, "title", "author")
	if !s.Cooperative() {
		t.Error("FromTuples source should be cooperative")
	}
	if s.Cardinality != 5000 {
		t.Errorf("Cardinality = %d, want 5000", s.Cardinality)
	}
	est := s.Signature.Estimate()
	if math.Abs(est-5000)/5000 > 0.25 {
		t.Errorf("signature estimate %v too far from 5000", est)
	}
}

func TestUncooperative(t *testing.T) {
	s := Uncooperative("u", schema.NewSchema("keyword"))
	if s.Cooperative() {
		t.Error("Uncooperative source reports Cooperative")
	}
	if s.Cardinality != -1 || s.Signature != nil {
		t.Error("Uncooperative source should hide data characteristics")
	}
}

func TestUniverseAddAssignsIDs(t *testing.T) {
	u := NewUniverse(testCfg)
	for i := 0; i < 3; i++ {
		id, err := u.Add(makeSource(t, "s", 0, 100, "a"))
		if err != nil {
			t.Fatal(err)
		}
		if int(id) != i {
			t.Errorf("id = %d, want %d", id, i)
		}
	}
	if u.Len() != 3 {
		t.Errorf("Len = %d", u.Len())
	}
}

func TestUniverseRejectsMismatchedSignature(t *testing.T) {
	u := NewUniverse(pcsa.Config{NumMaps: 128})
	s := makeSource(t, "bad", 0, 10, "a") // built with testCfg (64 maps)
	if _, err := u.Add(s); err != ErrSignatureConfig {
		t.Errorf("expected ErrSignatureConfig, got %v", err)
	}
}

func TestTotalCardinalityAndUnion(t *testing.T) {
	u := NewUniverse(testCfg)
	mustAdd(t, u, makeSource(t, "a", 0, 10000, "x"))
	mustAdd(t, u, makeSource(t, "b", 5000, 15000, "y")) // overlaps a by 5000
	mustAdd(t, u, Uncooperative("c", schema.NewSchema("z")))

	if got := u.TotalCardinality(); got != 20000 {
		t.Errorf("TotalCardinality = %d, want 20000", got)
	}
	est := u.UnionAllEstimate()
	if math.Abs(est-15000)/15000 > 0.20 {
		t.Errorf("UnionAllEstimate = %v, want ≈15000", est)
	}
	// Union of a subset.
	sub := u.UnionEstimate([]schema.SourceID{0, 1})
	if !approx.AlmostEqual(sub, est) {
		t.Errorf("subset union %v should equal all-cooperative union %v", sub, est)
	}
	// Union over only uncooperative sources is 0.
	if got := u.UnionEstimate([]schema.SourceID{2}); got != 0 {
		t.Errorf("uncooperative union = %v, want 0", got)
	}
	if got := u.SumCardinality([]schema.SourceID{0, 2}); got != 10000 {
		t.Errorf("SumCardinality = %d, want 10000", got)
	}
}

func TestAggregatesInvalidatedByAdd(t *testing.T) {
	u := NewUniverse(testCfg)
	mustAdd(t, u, makeSource(t, "a", 0, 1000, "x"))
	before := u.TotalCardinality()
	mustAdd(t, u, makeSource(t, "b", 1000, 3000, "y"))
	after := u.TotalCardinality()
	if after != before+2000 {
		t.Errorf("TotalCardinality not invalidated: before=%d after=%d", before, after)
	}
}

func TestCharacteristicRange(t *testing.T) {
	u := NewUniverse(testCfg)
	a := Uncooperative("a", schema.NewSchema("x"))
	a.SetCharacteristic("mttf", 50)
	b := Uncooperative("b", schema.NewSchema("y"))
	b.SetCharacteristic("mttf", 150)
	b.SetCharacteristic("fees", 3)
	mustAdd(t, u, a)
	mustAdd(t, u, b)

	min, max, ok := u.CharacteristicRange("mttf")
	if !ok || !approx.AlmostEqual(min, 50) || !approx.AlmostEqual(max, 150) {
		t.Errorf("mttf range = (%v,%v,%v), want (50,150,true)", min, max, ok)
	}
	if _, _, ok := u.CharacteristicRange("latency"); ok {
		t.Error("undefined characteristic should report ok=false")
	}
	names := u.CharacteristicNames()
	if len(names) != 2 || names[0] != "fees" || names[1] != "mttf" {
		t.Errorf("CharacteristicNames = %v", names)
	}
	// Memoized second call returns the same.
	min2, max2, _ := u.CharacteristicRange("mttf")
	if !approx.AlmostEqual(min2, min) || !approx.AlmostEqual(max2, max) {
		t.Error("memoized range differs")
	}
}

func TestAttrName(t *testing.T) {
	u := NewUniverse(testCfg)
	mustAdd(t, u, Uncooperative("a", schema.NewSchema("title", "author")))
	got := u.AttrName(schema.AttrRef{Source: 0, Attr: 1})
	if got != "author" {
		t.Errorf("AttrName = %q", got)
	}
	if u.NumAttrs() != 2 {
		t.Errorf("NumAttrs = %d", u.NumAttrs())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	u := NewUniverse(testCfg)
	a := makeSource(t, "coop", 0, 2000, "title", "author")
	a.SetCharacteristic("mttf", 93.5)
	mustAdd(t, u, a)
	mustAdd(t, u, Uncooperative("shy", schema.NewSchema("keyword")))

	var buf bytes.Buffer
	if err := u.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round-trip Len = %d", back.Len())
	}
	s0, s1 := back.Source(0), back.Source(1)
	if s0.Name != "coop" || s0.Cardinality != 2000 || !s0.Cooperative() {
		t.Errorf("source 0 mangled: %+v", s0)
	}
	if got := s0.Characteristics["mttf"]; !approx.AlmostEqual(got, 93.5) {
		t.Errorf("mttf = %v", got)
	}
	if !approx.AlmostEqual(s0.Signature.Estimate(), a.Signature.Estimate()) {
		t.Error("signature estimate changed in round trip")
	}
	if s1.Cooperative() {
		t.Error("source 1 should stay uncooperative")
	}
	if s1.Schema.Name(0) != "keyword" {
		t.Errorf("schema mangled: %v", s1.Schema)
	}
	if back.SignatureConfig() != testCfg {
		t.Errorf("config = %+v", back.SignatureConfig())
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nonsense")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"sig_num_maps":64,"sources":[{"name":"x","attrs":["a"],"signature":"!!!"}]}`)); err == nil {
		t.Error("bad base64 accepted")
	}
}

func TestUnionEstimateRandomizedMatchesExact(t *testing.T) {
	// Randomized check: union estimates stay within 25% of exact distinct
	// counts for modest sets (64 bitmaps → SE ≈ 10%).
	r := rand.New(rand.NewSource(9))
	u := NewUniverse(testCfg)
	exact := make([]*pcsa.ExactCounter, 4)
	for i := 0; i < 4; i++ {
		n := 2000 + r.Intn(8000)
		tuples := make([]TupleID, n)
		exact[i] = pcsa.NewExact()
		for j := range tuples {
			x := uint64(r.Intn(20000))
			tuples[j] = x
			exact[i].AddUint64(x)
		}
		s, err := FromTuples("s", schema.NewSchema("a"), NewSliceIterator(tuples), testCfg)
		if err != nil {
			t.Fatal(err)
		}
		mustAdd(t, u, s)
	}
	all := pcsa.NewExact()
	for _, e := range exact {
		all.MergeFrom(e)
	}
	est := u.UnionEstimate(u.IDs())
	got, want := est, float64(all.Count())
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("union estimate %v vs exact %v", got, want)
	}
}

// mustAdd adds s to u, failing the test on any error so a bad fixture is
// loud instead of corrupting downstream assertions.
func mustAdd(t testing.TB, u *Universe, s *Source) {
	t.Helper()
	if _, err := u.Add(s); err != nil {
		t.Fatal(err)
	}
}

// rebuiltUniverse builds a from-scratch universe holding copies of u's
// current sources — the reference the incremental mutation paths must match
// bit-for-bit.
func rebuiltUniverse(t *testing.T, u *Universe) *Universe {
	t.Helper()
	nu := NewUniverse(u.SignatureConfig())
	for _, s := range u.Sources() {
		c := *s
		mustAdd(t, nu, &c)
	}
	nu.Precompute()
	return nu
}

// checkAggregates asserts u's cached aggregates equal a from-scratch
// rebuild's, exactly (the counting union shares its estimate kernel with the
// full merge, so even the float must be bit-identical).
func checkAggregates(t *testing.T, u *Universe) {
	t.Helper()
	ref := rebuiltUniverse(t, u)
	if got, want := u.TotalCardinality(), ref.TotalCardinality(); got != want {
		t.Errorf("TotalCardinality = %d, rebuild says %d", got, want)
	}
	if got, want := u.UnionAllEstimate(), ref.UnionAllEstimate(); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("UnionAllEstimate = %v, rebuild says %v", got, want)
	}
	if got, want := u.MixedCount(), ref.MixedCount(); got != want {
		t.Errorf("MixedCount = %d, rebuild says %d", got, want)
	}
}

// TestAddAfterPrecomputeRefreshesAggregates pins the invalidation contract:
// a Precompute followed by Add must not serve the stale snapshot for any of
// the three cached aggregates.
func TestAddAfterPrecomputeRefreshesAggregates(t *testing.T) {
	u := NewUniverse(testCfg)
	mustAdd(t, u, makeSource(t, "a", 0, 2000, "x"))
	u.Precompute()
	staleCard := u.TotalCardinality()
	staleUnion := u.UnionAllEstimate()
	mustAdd(t, u, makeSource(t, "b", 2000, 6000, "y"))
	if u.TotalCardinality() == staleCard {
		t.Error("TotalCardinality served stale value after Add")
	}
	if math.Float64bits(u.UnionAllEstimate()) == math.Float64bits(staleUnion) {
		t.Error("UnionAllEstimate served stale value after Add")
	}
	checkAggregates(t, u)
}

func TestRemoveCompactsIDsAndAggregates(t *testing.T) {
	u := NewUniverse(testCfg)
	for i := uint64(0); i < 8; i++ {
		mustAdd(t, u, makeSource(t, "s", i*1000, (i+1)*1000, "a", "b"))
	}
	mixed := makeSource(t, "mixed", 8000, 9000, "c")
	mixed.Cardinality = -1 // signature but no cardinality
	mustAdd(t, u, mixed)
	mustAdd(t, u, Uncooperative("dark", schema.NewSchema("d")))
	u.Precompute()

	kept, err := u.Remove([]schema.SourceID{1, 5, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	wantKept := []schema.SourceID{0, 2, 3, 4, 6, 7, 8}
	if len(kept) != len(wantKept) {
		t.Fatalf("kept = %v, want %v", kept, wantKept)
	}
	for i := range kept {
		if kept[i] != wantKept[i] {
			t.Fatalf("kept = %v, want %v", kept, wantKept)
		}
	}
	if u.Len() != 7 {
		t.Fatalf("Len = %d after Remove, want 7", u.Len())
	}
	for i, s := range u.Sources() {
		if int(s.ID) != i {
			t.Errorf("source %d has ID %d after compaction", i, s.ID)
		}
	}
	checkAggregates(t, u)

	if _, err := u.Remove([]schema.SourceID{42}); err == nil || !errors.Is(err, ErrUnknownSource) {
		t.Errorf("Remove(42) = %v, want ErrUnknownSource", err)
	}
	if kept, err := u.Remove(nil); err != nil || len(kept) != 7 {
		t.Errorf("empty Remove = (%v, %v), want identity", kept, err)
	}
}

func TestUpdateSynopsisDriftAndDegrade(t *testing.T) {
	u := NewUniverse(testCfg)
	for i := uint64(0); i < 4; i++ {
		mustAdd(t, u, makeSource(t, "s", i*5000, (i+1)*5000, "a"))
	}
	u.Precompute()

	// Drift: source 1 now exports a shifted vocabulary.
	drifted := makeSource(t, "s", 40000, 47000, "a")
	if err := u.UpdateSynopsis(1, drifted.Cardinality, drifted.Signature); err != nil {
		t.Fatal(err)
	}
	if u.Source(1).Cardinality != 7000 {
		t.Errorf("Cardinality = %d after drift, want 7000", u.Source(1).Cardinality)
	}
	checkAggregates(t, u)

	// Degrade: source 2 stops cooperating but stays selectable.
	if err := u.Degrade(2); err != nil {
		t.Fatal(err)
	}
	if u.Source(2).Cooperative() {
		t.Error("source still cooperative after Degrade")
	}
	checkAggregates(t, u)

	// Recover: it comes back with fresh synopses.
	back := makeSource(t, "s", 10000, 15000, "a")
	if err := u.UpdateSynopsis(2, back.Cardinality, back.Signature); err != nil {
		t.Fatal(err)
	}
	if !u.Source(2).Cooperative() {
		t.Error("source not cooperative after recovery")
	}
	checkAggregates(t, u)

	if err := u.UpdateSynopsis(99, 1, nil); !errors.Is(err, ErrUnknownSource) {
		t.Errorf("UpdateSynopsis(99) = %v, want ErrUnknownSource", err)
	}
	bad := makeSource(t, "bad", 0, 10, "a")
	wrong := NewUniverse(pcsa.Config{NumMaps: 128})
	mustAdd(t, wrong, Uncooperative("pad", schema.NewSchema("x")))
	if err := wrong.UpdateSynopsis(0, bad.Cardinality, bad.Signature); err != ErrSignatureConfig {
		t.Errorf("mismatched config = %v, want ErrSignatureConfig", err)
	}
}

// TestRemoveAfterSaturationRebuilds forces the counting union's lanes past
// 255 (hundreds of sources sharing the same tuples saturate every set bit),
// then removes sources: subtraction is untrustworthy, so the union must be
// rebuilt and still match a from-scratch universe exactly.
func TestRemoveAfterSaturationRebuilds(t *testing.T) {
	u := NewUniverse(testCfg)
	for i := 0; i < 300; i++ {
		mustAdd(t, u, makeSource(t, "clone", 0, 50, "a"))
	}
	u.Precompute()
	if _, err := u.Remove([]schema.SourceID{0, 150, 299}); err != nil {
		t.Fatal(err)
	}
	checkAggregates(t, u)
	// And the rebuilt union must keep absorbing subsequent churn.
	if err := u.Degrade(7); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, u, makeSource(t, "new", 50, 200, "b"))
	checkAggregates(t, u)
}
