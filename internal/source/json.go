package source

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"

	"mube/internal/minhash"
	"mube/internal/pcsa"
	"mube/internal/schema"
)

// sourceJSON is the wire form of a Source. Signatures are base64-encoded
// binary; uncooperative sources omit cardinality and signature.
type sourceJSON struct {
	Name            string             `json:"name"`
	Attrs           []string           `json:"attrs"`
	Cardinality     *int64             `json:"cardinality,omitempty"`
	Signature       string             `json:"signature,omitempty"`
	AttrSignatures  []string           `json:"attr_signatures,omitempty"`
	Characteristics map[string]float64 `json:"characteristics,omitempty"`
}

// universeJSON is the wire form of a Universe.
type universeJSON struct {
	SigNumMaps int          `json:"sig_num_maps"`
	SigSeed    uint64       `json:"sig_seed"`
	Sources    []sourceJSON `json:"sources"`
}

// WriteJSON serializes the universe (source descriptions, synopses, and
// characteristics) so that a discovered universe can be cached between µBE
// sessions.
func (u *Universe) WriteJSON(w io.Writer) error {
	out := universeJSON{
		SigNumMaps: u.sigCfg.NumMaps,
		SigSeed:    u.sigCfg.Seed,
		Sources:    make([]sourceJSON, 0, len(u.sources)),
	}
	// One raw buffer and one base64 buffer reused across every signature: per
	// signature the only allocation left is the JSON string itself, instead of
	// a fresh marshal slice plus an EncodeToString copy. At 10⁵ sources the
	// difference is hundreds of MB of transient garbage.
	var raw, b64 []byte
	encode := func(sig interface {
		AppendBinary([]byte) ([]byte, error)
	}) (string, error) {
		var err error
		raw, err = sig.AppendBinary(raw[:0])
		if err != nil {
			return "", err
		}
		if n := base64.StdEncoding.EncodedLen(len(raw)); cap(b64) < n {
			b64 = make([]byte, n)
		} else {
			b64 = b64[:n]
		}
		base64.StdEncoding.Encode(b64, raw)
		return string(b64), nil
	}
	for _, s := range u.sources {
		sj := sourceJSON{
			Name:            s.Name,
			Attrs:           s.Schema.Attrs,
			Characteristics: s.Characteristics,
		}
		if s.Cardinality >= 0 {
			c := s.Cardinality
			sj.Cardinality = &c
		}
		if s.Signature != nil {
			enc, err := encode(s.Signature)
			if err != nil {
				return fmt.Errorf("source %q: %w", s.Name, err)
			}
			sj.Signature = enc
		}
		if s.AttrSignatures != nil {
			sj.AttrSignatures = make([]string, len(s.AttrSignatures))
			for i, sig := range s.AttrSignatures {
				if sig == nil {
					continue
				}
				enc, err := encode(sig)
				if err != nil {
					return fmt.Errorf("source %q attr %d: %w", s.Name, i, err)
				}
				sj.AttrSignatures[i] = enc
			}
		}
		out.Sources = append(out.Sources, sj)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON deserializes a universe written by WriteJSON.
func ReadJSON(r io.Reader) (*Universe, error) {
	var in universeJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("source: decode universe: %w", err)
	}
	cfg := pcsa.Config{NumMaps: in.SigNumMaps, Seed: in.SigSeed}
	u := NewUniverse(cfg)
	for i, sj := range in.Sources {
		s := &Source{
			Name:            sj.Name,
			Schema:          schema.NewSchema(sj.Attrs...),
			Cardinality:     -1,
			Characteristics: sj.Characteristics,
		}
		if sj.Cardinality != nil {
			s.Cardinality = *sj.Cardinality
		}
		if sj.Signature != "" {
			raw, err := base64.StdEncoding.DecodeString(sj.Signature)
			if err != nil {
				return nil, fmt.Errorf("source %d (%q): signature: %w", i, sj.Name, err)
			}
			var sig pcsa.Signature
			if err := sig.UnmarshalBinary(raw); err != nil {
				return nil, fmt.Errorf("source %d (%q): signature: %w", i, sj.Name, err)
			}
			s.Signature = &sig
		}
		if sj.AttrSignatures != nil {
			s.AttrSignatures = make([]*minhash.Signature, len(sj.AttrSignatures))
			for a, enc := range sj.AttrSignatures {
				if enc == "" {
					continue
				}
				raw, err := base64.StdEncoding.DecodeString(enc)
				if err != nil {
					return nil, fmt.Errorf("source %d (%q) attr %d: %w", i, sj.Name, a, err)
				}
				var sig minhash.Signature
				if err := sig.UnmarshalBinary(raw); err != nil {
					return nil, fmt.Errorf("source %d (%q) attr %d: %w", i, sj.Name, a, err)
				}
				s.AttrSignatures[a] = &sig
			}
		}
		if _, err := u.Add(s); err != nil {
			return nil, fmt.Errorf("source %d (%q): %w", i, sj.Name, err)
		}
	}
	return u, nil
}
