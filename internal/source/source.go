// Package source models µBE's view of a data source (§2.1): a schema, data
// characteristics (cardinality and a PCSA hash signature), and a set of
// user-meaningful source characteristics (latency, availability, fees,
// reputation, MTTF, …). It also defines the Universe — the set of all
// candidate sources from which µBE selects a data integration solution.
//
// µBE never needs a source's actual tuples: cooperative sources export their
// cardinality and a hash signature computed in one pass over their data, and
// those synopses are cached by µBE (§4). Uncooperative sources may still be
// selected, but score zero on the data-dependent quality metrics.
package source

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mube/internal/minhash"
	"mube/internal/pcsa"
	"mube/internal/schema"
)

// TupleID identifies a tuple. Synthetic workloads draw IDs from a fixed
// pool; real adapters would hash tuple content into an ID (see pcsa.AddBytes).
type TupleID = uint64

// TupleIterator streams a source's tuples one at a time.
type TupleIterator interface {
	// Next returns the next tuple and true, or 0 and false when exhausted.
	Next() (TupleID, bool)
}

// SliceIterator iterates over an in-memory slice of tuples.
type SliceIterator struct {
	tuples []TupleID
	pos    int
}

// NewSliceIterator returns an iterator over tuples.
func NewSliceIterator(tuples []TupleID) *SliceIterator {
	return &SliceIterator{tuples: tuples}
}

// Next implements TupleIterator.
func (it *SliceIterator) Next() (TupleID, bool) {
	if it.pos >= len(it.tuples) {
		return 0, false
	}
	t := it.tuples[it.pos]
	it.pos++
	return t, true
}

// Source is one candidate data source. Cardinality counts tuples *stored* at
// the source (with multiplicity, as reported by the source); the Signature
// summarizes the distinct tuples for union estimation.
type Source struct {
	// ID is the dense index of the source within its Universe; assigned by
	// Universe.Add.
	ID schema.SourceID
	// Name is a human-readable label (e.g. a site's hostname).
	Name string
	// Schema is the source's exported query schema.
	Schema schema.Schema
	// Cardinality is the number of tuples at the source, or -1 when the
	// source does not cooperate.
	Cardinality int64
	// Signature is the source's PCSA synopsis, or nil when the source does
	// not cooperate.
	Signature *pcsa.Signature
	// AttrSignatures optionally holds one MinHash synopsis per schema
	// attribute, sketching that attribute's value set. They enable the
	// data-based attribute similarity of §3 ("Match(S) can use any
	// attribute similarity measure, whether it is schema based or data
	// based"); nil or per-slot nil means the source did not provide one.
	AttrSignatures []*minhash.Signature
	// Characteristics holds named non-functional properties (§5): MTTF,
	// latency, fees, reputation, … Values are non-negative reals of any
	// magnitude; QEF aggregators normalize them per-universe.
	Characteristics map[string]float64
}

// Cooperative reports whether the source provided the data synopses µBE
// needs for the coverage and redundancy QEFs.
func (s *Source) Cooperative() bool { return s.Cardinality >= 0 && s.Signature != nil }

// AttrSignature returns the MinHash synopsis of attribute a's value set, or
// nil when the source did not provide one.
func (s *Source) AttrSignature(a int) *minhash.Signature {
	if a < 0 || a >= len(s.AttrSignatures) {
		return nil
	}
	return s.AttrSignatures[a]
}

// Characteristic returns the named characteristic and whether it is set.
func (s *Source) Characteristic(name string) (float64, bool) {
	v, ok := s.Characteristics[name]
	return v, ok
}

// SetCharacteristic sets a named characteristic, allocating the map if
// needed.
func (s *Source) SetCharacteristic(name string, v float64) {
	if s.Characteristics == nil {
		s.Characteristics = make(map[string]float64)
	}
	s.Characteristics[name] = v
}

// FromTuples builds a cooperative source by scanning its tuples once,
// computing the cardinality and PCSA signature exactly as a cooperating
// source would (§4: "computing the hash signature requires scanning the data
// only once").
func FromTuples(name string, sch schema.Schema, it TupleIterator, cfg pcsa.Config) (*Source, error) {
	sig, err := pcsa.New(cfg)
	if err != nil {
		return nil, err
	}
	var n int64
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		sig.AddUint64(t)
		n++
	}
	return &Source{
		ID:          -1,
		Name:        name,
		Schema:      sch,
		Cardinality: n,
		Signature:   sig,
	}, nil
}

// Uncooperative builds a source that exports only its schema and
// characteristics.
func Uncooperative(name string, sch schema.Schema) *Source {
	return &Source{ID: -1, Name: name, Schema: sch, Cardinality: -1}
}

// Universe is the set U = {s_1 … s_N} of all candidate sources. Sources are
// added once, then the universe is effectively immutable; the aggregate
// synopses used as QEF denominators are cached behind an atomic pointer —
// builders call Precompute so every Coverage.Eval afterwards is a lock-free
// load instead of re-deriving the cache under a mutex.
//
// Concurrency: Add (and any other mutation) must happen-before concurrent
// use. After that, all read methods — including the cached aggregates — are
// safe to call from multiple goroutines, which is what the parallel
// objective evaluator (internal/opt) relies on.
type Universe struct {
	sources []*Source
	sigCfg  pcsa.Config
	// arena owns the words of every cooperative source's signature as a few
	// contiguous slabs: Add interns incoming signatures into it, so at
	// Internet scale the universe holds ~20 slabs instead of 10⁵ heap bitmap
	// slices and union loops walk memory sequentially. nil when sigCfg is
	// invalid (no source can carry a signature then anyway). Slabs are
	// append-only: Remove and UpdateSynopsis leave the old words behind,
	// which is an acceptable leak for churn rates far below 100%/epoch.
	arena *pcsa.Arena

	// all is the subtractable counting union (PR 5) over every
	// signature-bearing source. Add/Remove/UpdateSynopsis maintain it
	// incrementally, so after a churn tick the Coverage denominator costs a
	// handful of counting flips instead of re-merging 10⁵ signatures.
	// Guarded by mu. allValid goes false when a subtraction can no longer be
	// trusted — a lane saturated at 255 is sticky, so remove counts are
	// inexact — and aggregates() then rebuilds the union from scratch
	// (adds-only construction keeps the words bitmap exact even when lanes
	// saturate).
	all      *pcsa.Counting
	allValid bool

	// agg caches the universe-wide aggregates; nil after a mutation. Reads
	// are a single atomic load; the (re)computation is serialized by mu.
	agg atomic.Pointer[aggregates]

	// mu guards the aggregate recomputation and the characteristic-range
	// memo.
	mu           sync.Mutex
	charRangeMem map[string][2]float64
}

// aggregates are the universe-wide QEF denominators, computed in one pass
// and shared immutably.
type aggregates struct {
	totalCard   int64
	unionAllEst float64
	// mixed counts sources that export a signature but no cardinality — the
	// unusual shape that forces Redundancy onto its cooperative-only union
	// fallback. The incremental evaluator uses mixed == 0 to skip that
	// bookkeeping entirely.
	mixed int
}

// NewUniverse returns an empty universe whose cooperative sources use the
// given signature configuration.
func NewUniverse(cfg pcsa.Config) *Universe {
	u := &Universe{sigCfg: cfg, charRangeMem: make(map[string][2]float64)}
	if a, err := pcsa.NewArena(cfg); err == nil {
		u.arena = a
	}
	return u
}

// SignatureConfig returns the signature configuration shared by the
// universe's cooperative sources.
func (u *Universe) SignatureConfig() pcsa.Config { return u.sigCfg }

// ErrSignatureConfig is returned when a cooperative source's signature does
// not match the universe's configuration.
var ErrSignatureConfig = errors.New("source: signature config does not match universe")

// Add inserts s into the universe, assigns its ID, and returns it. The
// source's signature, if any, is interned into the universe's arena: the
// source keeps estimating and merging identically (the view shares every
// kernel), but the words now live in the universe's contiguous slabs.
func (u *Universe) Add(s *Source) (schema.SourceID, error) {
	if s.Signature != nil && s.Signature.Config() != u.sigCfg {
		return -1, ErrSignatureConfig
	}
	if s.Signature != nil && u.arena != nil {
		s.Signature = u.arena.MustIntern(s.Signature)
	}
	s.ID = schema.SourceID(len(u.sources))
	u.sources = append(u.sources, s)
	u.mu.Lock()
	u.countingAddLocked(s.Signature)
	u.mu.Unlock()
	u.invalidate()
	return s.ID, nil
}

// ErrUnknownSource is returned by the mutating universe operations when a
// SourceID is out of range.
var ErrUnknownSource = errors.New("source: unknown source id")

// Remove deletes the given sources from the universe and compacts IDs so
// they stay dense (ID == slice index, which every downstream layer assumes).
// It returns the kept-ID list in ReprobeUniverse's convention —
// kept[newID] == oldID — so callers can remap constraints and solutions.
// Removed sources get ID -1; duplicate drop entries are tolerated. The
// maintained counting union is updated by subtraction (or marked for rebuild
// when a saturated lane makes subtraction untrustworthy), so the next
// aggregate read stays cheap.
func (u *Universe) Remove(drop []schema.SourceID) ([]schema.SourceID, error) {
	set := make(map[schema.SourceID]bool, len(drop))
	for _, id := range drop {
		if id < 0 || int(id) >= len(u.sources) {
			return nil, fmt.Errorf("%w: %d (universe has %d sources)", ErrUnknownSource, id, len(u.sources))
		}
		set[id] = true
	}
	if len(set) == 0 {
		return u.IDs(), nil
	}
	u.mu.Lock()
	for id := range set {
		u.countingDropLocked(u.sources[id].Signature)
	}
	u.mu.Unlock()
	kept := make([]schema.SourceID, 0, len(u.sources)-len(set))
	out := u.sources[:0]
	for old, s := range u.sources {
		if set[schema.SourceID(old)] {
			s.ID = -1
			continue
		}
		s.ID = schema.SourceID(len(out))
		out = append(out, s)
		kept = append(kept, schema.SourceID(old))
	}
	for i := len(out); i < len(u.sources); i++ {
		u.sources[i] = nil // release the dropped tails
	}
	u.sources = out
	u.invalidate()
	return kept, nil
}

// UpdateSynopsis replaces a source's data synopses in place — the source
// keeps its ID, schema, and characteristics, but reports a new cardinality
// and signature (a drifted vocabulary, or a recovered source re-exporting
// its data). Passing cardinality -1 and a nil signature degrades the source
// to uncooperative. The new signature is interned into the universe's arena
// and the counting union is flipped old→new.
func (u *Universe) UpdateSynopsis(id schema.SourceID, cardinality int64, sig *pcsa.Signature) error {
	if id < 0 || int(id) >= len(u.sources) {
		return fmt.Errorf("%w: %d (universe has %d sources)", ErrUnknownSource, id, len(u.sources))
	}
	if sig != nil && sig.Config() != u.sigCfg {
		return ErrSignatureConfig
	}
	if sig != nil && u.arena != nil {
		sig = u.arena.MustIntern(sig)
	}
	s := u.sources[id]
	u.mu.Lock()
	if s.Signature != sig {
		u.countingDropLocked(s.Signature)
		u.countingAddLocked(sig)
	}
	u.mu.Unlock()
	s.Cardinality = cardinality
	s.Signature = sig
	u.invalidate()
	return nil
}

// Degrade marks a source uncooperative in place: it keeps its schema and
// characteristics (it can still be selected, per §2.1) but loses its
// synopses, exactly as probe demotes a source that fails its handshake
// budget.
func (u *Universe) Degrade(id schema.SourceID) error {
	return u.UpdateSynopsis(id, -1, nil)
}

// countingAddLocked folds sig into the maintained counting union. A nil
// union means aggregates() has not materialized one yet — nothing to
// maintain, the first read builds it from scratch. mu must be held.
func (u *Universe) countingAddLocked(sig *pcsa.Signature) {
	if sig == nil || u.all == nil || !u.allValid {
		return
	}
	if err := u.all.Add(sig); err != nil {
		u.allValid = false
	}
}

// countingDropLocked subtracts sig from the maintained counting union, or
// marks it for rebuild when subtraction can no longer be trusted (a lane
// saturated at 255 is sticky, so its remove count is inexact). mu must be
// held.
func (u *Universe) countingDropLocked(sig *pcsa.Signature) {
	if sig == nil || u.all == nil || !u.allValid {
		return
	}
	if u.all.Saturated() {
		u.allValid = false
		return
	}
	if err := u.all.Remove(sig); err != nil {
		u.allValid = false
	}
}

// invalidate clears cached aggregates after a mutation.
func (u *Universe) invalidate() {
	u.agg.Store(nil)
	u.mu.Lock()
	u.charRangeMem = make(map[string][2]float64)
	u.mu.Unlock()
}

// Precompute eagerly materializes the universe-wide aggregates (total
// cardinality, union-of-all estimate, mixed-source count) so the hot QEF
// read paths never pay the first-computation cost mid-solve. Builders
// (synthetic generation, probe.BuildUniverse/ReprobeUniverse, session load)
// call it once after the last Add; it is also safe to call at any time.
func (u *Universe) Precompute() { u.aggregates() }

// aggregates returns the cached universe-wide aggregates, computing them on
// first use after a mutation. The fast path is one atomic load.
func (u *Universe) aggregates() *aggregates {
	if a := u.agg.Load(); a != nil {
		return a
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if a := u.agg.Load(); a != nil { // raced with another recompute
		return a
	}
	a := &aggregates{}
	sigs := make([]*pcsa.Signature, 0, len(u.sources))
	for _, s := range u.sources {
		if s.Cardinality > 0 {
			a.totalCard += s.Cardinality
		}
		if s.Signature != nil {
			sigs = append(sigs, s.Signature)
			if !s.Cooperative() {
				a.mixed++
			}
		}
	}
	if len(sigs) > 0 {
		a.unionAllEst = u.unionAllLocked(sigs)
	}
	u.agg.Store(a)
	return a
}

// unionAllLocked returns the estimate over all signature-bearing sources via
// the maintained counting union, rebuilding it when a past subtraction
// invalidated it. Counting estimates share the rho-sum kernel with
// pcsa.Union, so the value is bit-identical to the full merge this replaced.
// mu must be held.
func (u *Universe) unionAllLocked(sigs []*pcsa.Signature) float64 {
	if u.all == nil || !u.allValid {
		c, err := pcsa.NewCounting(u.sigCfg)
		if err == nil {
			for _, sig := range sigs {
				if err = c.Add(sig); err != nil {
					break
				}
			}
		}
		if err != nil {
			// Unreachable with Add/UpdateSynopsis enforcing a uniform
			// config, but fall back to the direct merge rather than panic
			// half-way through a rebuild.
			un, uerr := pcsa.Union(sigs...)
			if uerr != nil {
				panic(fmt.Sprintf("source: union of universe signatures: %v", uerr))
			}
			return un.Estimate()
		}
		u.all, u.allValid = c, true
	}
	return u.all.Estimate()
}

// Len returns the number of sources N.
func (u *Universe) Len() int { return len(u.sources) }

// Source returns the source with the given ID; it panics on an invalid ID,
// matching slice-index semantics.
func (u *Universe) Source(id schema.SourceID) *Source { return u.sources[id] }

// Sources returns all sources in ID order. The slice must not be modified.
func (u *Universe) Sources() []*Source { return u.sources }

// AttrName implements schema.Namer.
func (u *Universe) AttrName(r schema.AttrRef) string {
	return u.sources[r.Source].Schema.Name(r.Attr)
}

// NumAttrs returns the total number of attributes across all sources.
func (u *Universe) NumAttrs() int {
	n := 0
	for _, s := range u.sources {
		n += s.Schema.Len()
	}
	return n
}

// TotalCardinality returns Σ_{t∈U} |t| over cooperative sources — the
// denominator of the Card QEF.
func (u *Universe) TotalCardinality() int64 { return u.aggregates().totalCard }

// UnionAllEstimate returns the estimated |∪_{t∈U} t| over signature-bearing
// sources — the denominator of the Coverage QEF. It returns 0 when no source
// exports a signature. After Precompute the read is one atomic load.
func (u *Universe) UnionAllEstimate() float64 { return u.aggregates().unionAllEst }

// MixedCount returns the number of sources that export a signature but no
// cardinality. When it is 0, the Redundancy QEF's cooperative-only union
// fallback can never trigger, which the incremental evaluator exploits.
func (u *Universe) MixedCount() int { return u.aggregates().mixed }

// UnionEstimate returns the estimated number of distinct tuples in the union
// of the given sources, skipping uncooperative ones. It returns 0 when none
// of the sources has a signature.
func (u *Universe) UnionEstimate(ids []schema.SourceID) float64 {
	var acc *pcsa.Signature
	for _, id := range ids {
		s := u.sources[id]
		if s.Signature == nil {
			continue
		}
		if acc == nil {
			acc = s.Signature.Clone()
			continue
		}
		if err := acc.MergeFrom(s.Signature); err != nil {
			panic(fmt.Sprintf("source: union of signatures: %v", err))
		}
	}
	if acc == nil {
		return 0
	}
	return acc.Estimate()
}

// SumCardinality returns Σ_{s∈ids} |s| over cooperative sources.
func (u *Universe) SumCardinality(ids []schema.SourceID) int64 {
	var sum int64
	for _, id := range ids {
		if c := u.sources[id].Cardinality; c > 0 {
			sum += c
		}
	}
	return sum
}

// CharacteristicRange returns (min, max) of the named characteristic over
// all sources that define it, used for normalization by aggregators (§5).
// ok is false when no source defines the characteristic.
func (u *Universe) CharacteristicRange(name string) (min, max float64, ok bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if r, hit := u.charRangeMem[name]; hit {
		return r[0], r[1], true
	}
	first := true
	for _, s := range u.sources {
		v, has := s.Characteristics[name]
		if !has {
			continue
		}
		if first {
			min, max, first = v, v, false
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if first {
		return 0, 0, false
	}
	u.charRangeMem[name] = [2]float64{min, max}
	return min, max, true
}

// CharacteristicNames returns the sorted set of characteristic names defined
// by at least one source.
func (u *Universe) CharacteristicNames() []string {
	set := make(map[string]struct{})
	for _, s := range u.sources {
		for name := range s.Characteristics {
			set[name] = struct{}{}
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SignatureBytes returns the slab memory backing the universe's interned
// signatures — the working-set number scale benchmarks report.
func (u *Universe) SignatureBytes() int {
	if u.arena == nil {
		return 0
	}
	return u.arena.Bytes()
}

// IDs returns all source IDs, 0..N-1.
func (u *Universe) IDs() []schema.SourceID {
	ids := make([]schema.SourceID, len(u.sources))
	for i := range ids {
		ids[i] = schema.SourceID(i)
	}
	return ids
}
