// Package synth generates the synthetic universes of the paper's evaluation
// (§7.1): N source descriptions whose schemas are the 50 BAMM-style Books
// schemas plus perturbed copies, whose cardinalities follow a Zipf
// distribution over [10 000, 1 000 000], whose tuples are drawn from a
// 4 000 000-tuple pool split into General and Specialty halves, and whose
// MTTF characteristic follows Normal(100, 40) days.
//
// Generation is fully deterministic per seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"mube/internal/bamm"
	"mube/internal/minhash"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
)

// Config parameterizes universe generation. The zero value is not usable;
// start from Defaults().
type Config struct {
	// NumSources is N, the universe size.
	NumSources int
	// Seed makes generation reproducible.
	Seed int64
	// Sig is the PCSA signature shape for all sources.
	Sig pcsa.Config

	// Perturbation probabilities (§7.1: "we add attributes to the schema,
	// remove attributes from the schema, or replace attributes ... with
	// other attributes whose names we get from a list of words unrelated to
	// the Books domain"). The first NumBase sources are exact copies of the
	// base schemas ("fully conformant"); the rest are perturbed.
	PRemove  float64 // per-attribute removal probability
	PReplace float64 // per-attribute replacement probability
	MaxAdd   int     // up to MaxAdd noise attributes appended (uniform)

	// Data shape.
	PoolSize     uint64  // distinct tuples in the universe pool (paper: 4M)
	MinCard      int64   // smallest source cardinality (paper: 10k)
	MaxCard      int64   // largest source cardinality (paper: 1M)
	ZipfS        float64 // Zipf size exponent: rank-k source holds MaxCard/k^ZipfS tuples
	SpecialtyPct float64 // fraction of a specialty source's tuples from the specialty pool

	// MTTF characteristic (days), Normal(MTTFMean, MTTFStd) clipped to ≥ 1.
	MTTFMean float64
	MTTFStd  float64

	// KeepTuples retains each source's tuple IDs in the Result so that rows
	// can be materialized for the mediator query substrate (package
	// mediator). Only sensible at reduced data scales — memory grows with
	// the total tuple count.
	KeepTuples bool

	// AttrSignatures makes every source sketch each attribute's value set
	// with a MinHash synopsis, enabling data-based attribute similarity
	// (match.Config.DataWeight). Adds one O(1) sketch update per attribute
	// per tuple during generation. Ignored in multi-domain mode.
	AttrSignatures bool
	// MinHashK is the per-attribute sketch width (0 → minhash.DefaultK).
	MinHashK int

	// Domains > 1 switches generation from the BAMM Books shape to the
	// Internet-scale multi-domain shape: each domain gets its own concept
	// vocabulary of hash-derived attribute names, schemas are removal-only
	// perturbations of the domain's full concept list, and names never repeat
	// across domains — so the similarity graph decomposes into (at least)
	// per-domain components and cluster-sharded matching has real shards to
	// work with. 0 or 1 keeps the BAMM mode unchanged.
	Domains int
	// DomainConcepts is the per-domain concept vocabulary size in multi-
	// domain mode (0 → 12).
	DomainConcepts int

	// NamePrefix is prepended to every generated source name. Name
	// formatting draws nothing from the RNG, so the prefix cannot perturb
	// the generated universe in any other way; a watch loop uses it to give
	// each epoch's arrivals universe-unique names (fault fates and probe
	// retries are keyed by name).
	NamePrefix string
}

// Defaults returns the paper's §7.1 configuration at full scale.
func Defaults() Config {
	return Config{
		NumSources:   700,
		Seed:         1,
		Sig:          pcsa.DefaultConfig,
		PRemove:      0.15,
		PReplace:     0.20,
		MaxAdd:       2,
		PoolSize:     4_000_000,
		MinCard:      10_000,
		MaxCard:      1_000_000,
		ZipfS:        1.0,
		SpecialtyPct: 0.10,
		MTTFMean:     100,
		MTTFStd:      40,
	}
}

// Scaled returns Defaults with the data volume scaled down by factor (e.g.
// 0.01 for tests): pool size and cardinality bounds shrink proportionally
// while schema generation is untouched.
func Scaled(factor float64) Config {
	c := Defaults()
	c.PoolSize = uint64(float64(c.PoolSize) * factor)
	c.MinCard = int64(math.Max(float64(c.MinCard)*factor, 16))
	c.MaxCard = int64(math.Max(float64(c.MaxCard)*factor, 64))
	return c
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	if c.NumSources < 1 {
		return fmt.Errorf("synth: NumSources %d < 1", c.NumSources)
	}
	if c.MinCard < 1 || c.MaxCard < c.MinCard {
		return fmt.Errorf("synth: bad cardinality range [%d, %d]", c.MinCard, c.MaxCard)
	}
	if c.PoolSize < 2 {
		return fmt.Errorf("synth: pool size %d too small", c.PoolSize)
	}
	if c.ZipfS <= 0 {
		return fmt.Errorf("synth: ZipfS %v must be > 0", c.ZipfS)
	}
	if c.PRemove < 0 || c.PRemove > 1 || c.PReplace < 0 || c.PReplace > 1 {
		return fmt.Errorf("synth: perturbation probabilities out of range")
	}
	if c.SpecialtyPct < 0 || c.SpecialtyPct > 1 {
		return fmt.Errorf("synth: SpecialtyPct %v out of [0,1]", c.SpecialtyPct)
	}
	if c.Domains < 0 || c.DomainConcepts < 0 {
		return fmt.Errorf("synth: negative Domains/DomainConcepts")
	}
	return nil
}

// Result is a generated universe plus the ground-truth metadata the
// experiments need.
type Result struct {
	// Universe is the generated U.
	Universe *source.Universe
	// BaseSchema[i] is the index of the BAMM base schema source i derives
	// from.
	BaseSchema []int
	// Conformant lists the sources whose schemas are unperturbed copies of
	// a base schema — the pool the experiments draw source constraints from
	// (§7.2: "random sources with schemas that are fully conformant to one
	// of the original BAMM schemas").
	Conformant []schema.SourceID
	// Specialty reports which sources carry specialty tuples.
	Specialty []bool
	// Tuples holds each source's tuple IDs when Config.KeepTuples is set
	// (nil otherwise).
	Tuples [][]source.TupleID
	// AttrOrigins[i][a] is the ground-truth concept behind attribute a of
	// source i, or -1 for genuine noise. A perturbation that *renames* an
	// attribute to a noise word keeps its origin: the site changed its
	// label, not its data — which is exactly the situation data-based
	// similarity exists to recover.
	AttrOrigins [][]int
	// Config echoes the generation parameters.
	Config Config
}

// SourceMeta is the per-source ground truth Stream hands alongside each
// generated source. Collect it (Generate does) or drop it (GenerateUniverse
// does) — at 10⁵–10⁶ sources retaining it is the caller's memory decision.
type SourceMeta struct {
	// BaseSchema is the BAMM base-schema index (BAMM mode) or the domain
	// index (multi-domain mode) the source derives from.
	BaseSchema int
	// Conformant reports an unperturbed copy of the base schema.
	Conformant bool
	// Specialty reports whether the source carries specialty tuples.
	Specialty bool
	// AttrOrigins[a] is the ground-truth concept behind attribute a, -1 for
	// genuine noise.
	AttrOrigins []int
	// Tuples holds the source's tuple IDs when Config.KeepTuples is set.
	Tuples []source.TupleID
}

// Stream generates the universe one source at a time, calling yield for each.
// Nothing is retained between sources beyond O(N) rank bookkeeping — no rows,
// no cumulative metadata — so a 10⁵–10⁶-source universe streams in bounded
// memory into whatever the caller accumulates (typically a Universe, whose
// arena interns each signature as it arrives). A yield error aborts
// generation and is returned as-is.
//
// Generation is fully deterministic per seed, and the BAMM mode's random
// stream is identical to historical Generate output.
func Stream(cfg Config, yield func(*source.Source, SourceMeta) error) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Domains > 1 {
		return streamDomains(cfg, r, yield)
	}
	return streamBAMM(cfg, r, yield)
}

// Generate builds a synthetic universe with full ground-truth metadata, by
// streaming and collecting.
func Generate(cfg Config) (*Result, error) {
	res := &Result{Universe: source.NewUniverse(cfg.Sig), Config: cfg}
	err := Stream(cfg, func(s *source.Source, m SourceMeta) error {
		id, err := res.Universe.Add(s)
		if err != nil {
			return err
		}
		res.BaseSchema = append(res.BaseSchema, m.BaseSchema)
		res.Specialty = append(res.Specialty, m.Specialty)
		res.AttrOrigins = append(res.AttrOrigins, m.AttrOrigins)
		if m.Conformant {
			res.Conformant = append(res.Conformant, id)
		}
		if cfg.KeepTuples {
			res.Tuples = append(res.Tuples, m.Tuples)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Materialize the universe aggregates (total cardinality, |∪U| estimate)
	// at generation time rather than inside the first Coverage evaluation.
	res.Universe.Precompute()
	return res, nil
}

// GenerateUniverse streams a universe without retaining ground-truth
// metadata or tuples — the memory-lean entry point for scale benchmarks.
func GenerateUniverse(cfg Config) (*source.Universe, error) {
	u := source.NewUniverse(cfg.Sig)
	err := Stream(cfg, func(s *source.Source, _ SourceMeta) error {
		_, err := u.Add(s)
		return err
	})
	if err != nil {
		return nil, err
	}
	u.Precompute()
	return u, nil
}

// streamBAMM is the paper's §7.1 generator: BAMM Books schemas plus
// perturbed copies. The RNG call sequence is load-bearing — it reproduces
// the exact universes of archived experiment runs — so edits must not
// insert, remove, or reorder draws.
func streamBAMM(cfg Config, r *rand.Rand, yield func(*source.Source, SourceMeta) error) error {
	base := bamm.Schemas()
	baseOrigins := make([][]int, len(base))
	for i, sch := range base {
		baseOrigins[i] = make([]int, sch.Len())
		for a := 0; a < sch.Len(); a++ {
			baseOrigins[i][a] = -1
			if ci, ok := bamm.ConceptOf(sch.Name(a)); ok {
				baseOrigins[i][a] = ci
			}
		}
	}
	minhashK := cfg.MinHashK
	if minhashK == 0 {
		minhashK = minhash.DefaultK
	}
	// Rank-based Zipf over source sizes: the source of rank k holds
	// MaxCard/k^s tuples (clipped to MinCard), ranks shuffled across the
	// universe. This matches the paper's "number of tuples ranging from
	// 10,000 to 1,000,000 that follows a Zipf distribution": a few huge
	// sources, many small ones.
	ranks := r.Perm(cfg.NumSources)
	generalPool := cfg.PoolSize / 2
	vocabScale := VocabScale(cfg)

	for i := 0; i < cfg.NumSources; i++ {
		baseIdx := i % len(base)
		conformant := i < len(base)
		attrs := base[baseIdx].Attrs
		origins := baseOrigins[baseIdx]
		if !conformant {
			attrs, origins = perturb(r, attrs, origins, cfg)
		}

		card := int64(float64(cfg.MaxCard) / math.Pow(float64(ranks[i]+1), cfg.ZipfS))
		if card < cfg.MinCard {
			card = cfg.MinCard
		}
		specialty := i%2 == 1 // half the sources carry specialty items

		sig, err := pcsa.New(cfg.Sig)
		if err != nil {
			return err
		}
		nSpec := int64(0)
		if specialty {
			nSpec = int64(cfg.SpecialtyPct * float64(card))
		}
		var kept []source.TupleID
		if cfg.KeepTuples {
			kept = make([]source.TupleID, 0, card)
		}
		var attrSigs []*minhash.Signature
		if cfg.AttrSignatures {
			attrSigs = make([]*minhash.Signature, len(attrs))
			for a := range attrSigs {
				s, err := minhash.New(minhashK, 0)
				if err != nil {
					return err
				}
				attrSigs[a] = s
			}
		}
		for t := int64(0); t < card; t++ {
			var tuple uint64
			if t < nSpec {
				tuple = generalPool + uint64(r.Int63n(int64(cfg.PoolSize-generalPool)))
			} else {
				tuple = uint64(r.Int63n(int64(generalPool)))
			}
			sig.AddUint64(tuple)
			if cfg.KeepTuples {
				kept = append(kept, tuple)
			}
			for a := range attrSigs {
				attrSigs[a].AddUint64(ValueID(tuple, origins[a], attrs[a], vocabScale))
			}
		}

		mttf := cfg.MTTFMean + r.NormFloat64()*cfg.MTTFStd
		if mttf < 1 {
			mttf = 1
		}
		s := &source.Source{
			Name:           cfg.NamePrefix + fmt.Sprintf("src-%03d-b%02d", i, baseIdx),
			Schema:         schema.NewSchema(attrs...),
			Cardinality:    card,
			Signature:      sig,
			AttrSignatures: attrSigs,
			Characteristics: map[string]float64{
				"mttf": mttf,
				// Per-source query latency in milliseconds, used by the
				// mediator's cost simulation and available as a QEF.
				"latency": 50 + r.Float64()*450,
			},
		}
		meta := SourceMeta{
			BaseSchema:  baseIdx,
			Conformant:  conformant,
			Specialty:   specialty,
			AttrOrigins: origins,
			Tuples:      kept,
		}
		if err := yield(s, meta); err != nil {
			return err
		}
	}
	return nil
}

// streamDomains is the Internet-scale generator: cfg.Domains disjoint
// concept vocabularies of hash-derived names, schemas drawn by removal-only
// perturbation from the source's domain vocabulary. Because attribute names
// never repeat (and, being random 12-char hex tokens, share essentially no
// 3-grams) across domains, the θ-thresholded similarity graph decomposes
// into per-domain components — the structure cluster-sharded matching and
// the partitioned solver exploit. Data shape (Zipf cardinalities, the
// General/Specialty tuple pool, MTTF, latency) matches the BAMM mode.
func streamDomains(cfg Config, r *rand.Rand, yield func(*source.Source, SourceMeta) error) error {
	nd := cfg.Domains
	nc := cfg.DomainConcepts
	if nc == 0 {
		nc = 12
	}
	vocab := domainVocab(cfg.Seed, nd, nc)
	ranks := r.Perm(cfg.NumSources)
	generalPool := cfg.PoolSize / 2

	for i := 0; i < cfg.NumSources; i++ {
		d := i % nd
		conformant := i < nd // one full-vocabulary source per domain
		attrs := make([]string, 0, nc)
		origins := make([]int, 0, nc)
		for c := 0; c < nc; c++ {
			if !conformant && r.Float64() < cfg.PRemove {
				continue
			}
			attrs = append(attrs, vocab[d][c])
			origins = append(origins, d*nc+c)
		}
		if len(attrs) == 0 {
			c := r.Intn(nc)
			attrs = append(attrs, vocab[d][c])
			origins = append(origins, d*nc+c)
		}

		card := int64(float64(cfg.MaxCard) / math.Pow(float64(ranks[i]+1), cfg.ZipfS))
		if card < cfg.MinCard {
			card = cfg.MinCard
		}
		specialty := i%2 == 1

		sig, err := pcsa.New(cfg.Sig)
		if err != nil {
			return err
		}
		nSpec := int64(0)
		if specialty {
			nSpec = int64(cfg.SpecialtyPct * float64(card))
		}
		var kept []source.TupleID
		if cfg.KeepTuples {
			kept = make([]source.TupleID, 0, card)
		}
		for t := int64(0); t < card; t++ {
			var tuple uint64
			if t < nSpec {
				tuple = generalPool + uint64(r.Int63n(int64(cfg.PoolSize-generalPool)))
			} else {
				tuple = uint64(r.Int63n(int64(generalPool)))
			}
			sig.AddUint64(tuple)
			if cfg.KeepTuples {
				kept = append(kept, tuple)
			}
		}

		mttf := cfg.MTTFMean + r.NormFloat64()*cfg.MTTFStd
		if mttf < 1 {
			mttf = 1
		}
		s := &source.Source{
			Name:        cfg.NamePrefix + fmt.Sprintf("src-%06d-d%03d", i, d),
			Schema:      schema.NewSchema(attrs...),
			Cardinality: card,
			Signature:   sig,
			Characteristics: map[string]float64{
				"mttf":    mttf,
				"latency": 50 + r.Float64()*450,
			},
		}
		meta := SourceMeta{
			BaseSchema:  d,
			Conformant:  conformant,
			Specialty:   specialty,
			AttrOrigins: origins,
			Tuples:      kept,
		}
		if err := yield(s, meta); err != nil {
			return err
		}
	}
	return nil
}

// domainVocab derives nd disjoint vocabularies of nc attribute names each
// from the seed. Names are 12-character hex tokens ("a1f3c09b24de"): two
// random tokens share essentially no 3-grams, so cross-domain similarity
// stays far below any sensible θ. Collisions (astronomically rare) are
// resolved deterministically by salting.
func domainVocab(seed int64, nd, nc int) [][]string {
	used := make(map[string]bool, nd*nc)
	names := make([][]string, nd)
	for d := range names {
		names[d] = make([]string, nc)
		for c := range names[d] {
			for salt := 0; ; salt++ {
				h := nameMix(uint64(seed)+0x9e3779b97f4a7c15, uint64(d), uint64(c), uint64(salt))
				n := fmt.Sprintf("%012x", h&(1<<48-1))
				if !used[n] {
					used[n] = true
					names[d][c] = n
					break
				}
			}
		}
	}
	return names
}

// nameMix folds the vocabulary coordinates into 64 bits (SplitMix64-style
// finalizer).
func nameMix(xs ...uint64) uint64 {
	var h uint64 = 0x6d75626573796e74 // "mubesynt"
	for _, x := range xs {
		h ^= x + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// perturb applies the §7.1 schema perturbation: per attribute, remove with
// PRemove or replace its *name* with a noise word with PReplace (the data
// behind it is unchanged, so the origin concept is kept); then append up to
// MaxAdd genuine noise attributes (origin -1). The result always keeps at
// least one attribute.
func perturb(r *rand.Rand, attrs []string, origins []int, cfg Config) ([]string, []int) {
	outAttrs := make([]string, 0, len(attrs)+cfg.MaxAdd)
	outOrigins := make([]int, 0, len(attrs)+cfg.MaxAdd)
	for i, a := range attrs {
		roll := r.Float64()
		switch {
		case roll < cfg.PRemove:
			// removed
		case roll < cfg.PRemove+cfg.PReplace:
			outAttrs = append(outAttrs, noiseWords[r.Intn(len(noiseWords))])
			outOrigins = append(outOrigins, origins[i]) // renamed, not re-sourced
		default:
			outAttrs = append(outAttrs, a)
			outOrigins = append(outOrigins, origins[i])
		}
	}
	if cfg.MaxAdd > 0 {
		for n := r.Intn(cfg.MaxAdd + 1); n > 0; n-- {
			outAttrs = append(outAttrs, noiseWords[r.Intn(len(noiseWords))])
			outOrigins = append(outOrigins, -1)
		}
	}
	if len(outAttrs) == 0 {
		pick := r.Intn(len(attrs))
		outAttrs = append(outAttrs, attrs[pick])
		outOrigins = append(outOrigins, origins[pick])
	}
	return dedup(outAttrs, outOrigins)
}

// dedup removes duplicate attribute names (keeping first occurrences, with
// their origins) so that source schemas remain lists of distinct attributes.
func dedup(attrs []string, origins []int) ([]string, []int) {
	seen := make(map[string]struct{}, len(attrs))
	outA := attrs[:0]
	outO := origins[:0]
	for i, a := range attrs {
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		outA = append(outA, a)
		outO = append(outO, origins[i])
	}
	return outA, outO
}

// ConceptSources returns, for each concept, how many of the sources in sel
// express it (a source counts once per concept). It is the ground-truth view
// Table 1's "missed" column needs.
func ConceptSources(u *source.Universe, sel []schema.SourceID) map[int]int {
	counts := make(map[int]int)
	for _, id := range sel {
		s := u.Source(id)
		seen := make(map[int]bool)
		for j := 0; j < s.Schema.Len(); j++ {
			if ci, ok := bamm.ConceptOf(s.Schema.Name(j)); ok && !seen[ci] {
				seen[ci] = true
				counts[ci]++
			}
		}
	}
	return counts
}
