// Package synth generates the synthetic universes of the paper's evaluation
// (§7.1): N source descriptions whose schemas are the 50 BAMM-style Books
// schemas plus perturbed copies, whose cardinalities follow a Zipf
// distribution over [10 000, 1 000 000], whose tuples are drawn from a
// 4 000 000-tuple pool split into General and Specialty halves, and whose
// MTTF characteristic follows Normal(100, 40) days.
//
// Generation is fully deterministic per seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"mube/internal/bamm"
	"mube/internal/minhash"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
)

// Config parameterizes universe generation. The zero value is not usable;
// start from Defaults().
type Config struct {
	// NumSources is N, the universe size.
	NumSources int
	// Seed makes generation reproducible.
	Seed int64
	// Sig is the PCSA signature shape for all sources.
	Sig pcsa.Config

	// Perturbation probabilities (§7.1: "we add attributes to the schema,
	// remove attributes from the schema, or replace attributes ... with
	// other attributes whose names we get from a list of words unrelated to
	// the Books domain"). The first NumBase sources are exact copies of the
	// base schemas ("fully conformant"); the rest are perturbed.
	PRemove  float64 // per-attribute removal probability
	PReplace float64 // per-attribute replacement probability
	MaxAdd   int     // up to MaxAdd noise attributes appended (uniform)

	// Data shape.
	PoolSize     uint64  // distinct tuples in the universe pool (paper: 4M)
	MinCard      int64   // smallest source cardinality (paper: 10k)
	MaxCard      int64   // largest source cardinality (paper: 1M)
	ZipfS        float64 // Zipf size exponent: rank-k source holds MaxCard/k^ZipfS tuples
	SpecialtyPct float64 // fraction of a specialty source's tuples from the specialty pool

	// MTTF characteristic (days), Normal(MTTFMean, MTTFStd) clipped to ≥ 1.
	MTTFMean float64
	MTTFStd  float64

	// KeepTuples retains each source's tuple IDs in the Result so that rows
	// can be materialized for the mediator query substrate (package
	// mediator). Only sensible at reduced data scales — memory grows with
	// the total tuple count.
	KeepTuples bool

	// AttrSignatures makes every source sketch each attribute's value set
	// with a MinHash synopsis, enabling data-based attribute similarity
	// (match.Config.DataWeight). Adds one O(1) sketch update per attribute
	// per tuple during generation.
	AttrSignatures bool
	// MinHashK is the per-attribute sketch width (0 → minhash.DefaultK).
	MinHashK int
}

// Defaults returns the paper's §7.1 configuration at full scale.
func Defaults() Config {
	return Config{
		NumSources:   700,
		Seed:         1,
		Sig:          pcsa.DefaultConfig,
		PRemove:      0.15,
		PReplace:     0.20,
		MaxAdd:       2,
		PoolSize:     4_000_000,
		MinCard:      10_000,
		MaxCard:      1_000_000,
		ZipfS:        1.0,
		SpecialtyPct: 0.10,
		MTTFMean:     100,
		MTTFStd:      40,
	}
}

// Scaled returns Defaults with the data volume scaled down by factor (e.g.
// 0.01 for tests): pool size and cardinality bounds shrink proportionally
// while schema generation is untouched.
func Scaled(factor float64) Config {
	c := Defaults()
	c.PoolSize = uint64(float64(c.PoolSize) * factor)
	c.MinCard = int64(math.Max(float64(c.MinCard)*factor, 16))
	c.MaxCard = int64(math.Max(float64(c.MaxCard)*factor, 64))
	return c
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	if c.NumSources < 1 {
		return fmt.Errorf("synth: NumSources %d < 1", c.NumSources)
	}
	if c.MinCard < 1 || c.MaxCard < c.MinCard {
		return fmt.Errorf("synth: bad cardinality range [%d, %d]", c.MinCard, c.MaxCard)
	}
	if c.PoolSize < 2 {
		return fmt.Errorf("synth: pool size %d too small", c.PoolSize)
	}
	if c.ZipfS <= 0 {
		return fmt.Errorf("synth: ZipfS %v must be > 0", c.ZipfS)
	}
	if c.PRemove < 0 || c.PRemove > 1 || c.PReplace < 0 || c.PReplace > 1 {
		return fmt.Errorf("synth: perturbation probabilities out of range")
	}
	if c.SpecialtyPct < 0 || c.SpecialtyPct > 1 {
		return fmt.Errorf("synth: SpecialtyPct %v out of [0,1]", c.SpecialtyPct)
	}
	return nil
}

// Result is a generated universe plus the ground-truth metadata the
// experiments need.
type Result struct {
	// Universe is the generated U.
	Universe *source.Universe
	// BaseSchema[i] is the index of the BAMM base schema source i derives
	// from.
	BaseSchema []int
	// Conformant lists the sources whose schemas are unperturbed copies of
	// a base schema — the pool the experiments draw source constraints from
	// (§7.2: "random sources with schemas that are fully conformant to one
	// of the original BAMM schemas").
	Conformant []schema.SourceID
	// Specialty reports which sources carry specialty tuples.
	Specialty []bool
	// Tuples holds each source's tuple IDs when Config.KeepTuples is set
	// (nil otherwise).
	Tuples [][]source.TupleID
	// AttrOrigins[i][a] is the ground-truth concept behind attribute a of
	// source i, or -1 for genuine noise. A perturbation that *renames* an
	// attribute to a noise word keeps its origin: the site changed its
	// label, not its data — which is exactly the situation data-based
	// similarity exists to recover.
	AttrOrigins [][]int
	// Config echoes the generation parameters.
	Config Config
}

// Generate builds a synthetic universe.
func Generate(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	base := bamm.Schemas()
	baseOrigins := make([][]int, len(base))
	for i, sch := range base {
		baseOrigins[i] = make([]int, sch.Len())
		for a := 0; a < sch.Len(); a++ {
			baseOrigins[i][a] = -1
			if ci, ok := bamm.ConceptOf(sch.Name(a)); ok {
				baseOrigins[i][a] = ci
			}
		}
	}
	res := &Result{
		Universe:    source.NewUniverse(cfg.Sig),
		BaseSchema:  make([]int, cfg.NumSources),
		Specialty:   make([]bool, cfg.NumSources),
		AttrOrigins: make([][]int, cfg.NumSources),
		Config:      cfg,
	}
	minhashK := cfg.MinHashK
	if minhashK == 0 {
		minhashK = minhash.DefaultK
	}
	// Rank-based Zipf over source sizes: the source of rank k holds
	// MaxCard/k^s tuples (clipped to MinCard), ranks shuffled across the
	// universe. This matches the paper's "number of tuples ranging from
	// 10,000 to 1,000,000 that follows a Zipf distribution": a few huge
	// sources, many small ones.
	ranks := r.Perm(cfg.NumSources)
	generalPool := cfg.PoolSize / 2
	vocabScale := VocabScale(cfg)

	for i := 0; i < cfg.NumSources; i++ {
		baseIdx := i % len(base)
		res.BaseSchema[i] = baseIdx
		conformant := i < len(base)
		attrs := base[baseIdx].Attrs
		origins := baseOrigins[baseIdx]
		if !conformant {
			attrs, origins = perturb(r, attrs, origins, cfg)
		}
		res.AttrOrigins[i] = origins

		card := int64(float64(cfg.MaxCard) / math.Pow(float64(ranks[i]+1), cfg.ZipfS))
		if card < cfg.MinCard {
			card = cfg.MinCard
		}
		specialty := i%2 == 1 // half the sources carry specialty items
		res.Specialty[i] = specialty

		sig, err := pcsa.New(cfg.Sig)
		if err != nil {
			return nil, err
		}
		nSpec := int64(0)
		if specialty {
			nSpec = int64(cfg.SpecialtyPct * float64(card))
		}
		var kept []source.TupleID
		if cfg.KeepTuples {
			kept = make([]source.TupleID, 0, card)
		}
		var attrSigs []*minhash.Signature
		if cfg.AttrSignatures {
			attrSigs = make([]*minhash.Signature, len(attrs))
			for a := range attrSigs {
				s, err := minhash.New(minhashK, 0)
				if err != nil {
					return nil, err
				}
				attrSigs[a] = s
			}
		}
		for t := int64(0); t < card; t++ {
			var tuple uint64
			if t < nSpec {
				tuple = generalPool + uint64(r.Int63n(int64(cfg.PoolSize-generalPool)))
			} else {
				tuple = uint64(r.Int63n(int64(generalPool)))
			}
			sig.AddUint64(tuple)
			if cfg.KeepTuples {
				kept = append(kept, tuple)
			}
			for a := range attrSigs {
				attrSigs[a].AddUint64(ValueID(tuple, origins[a], attrs[a], vocabScale))
			}
		}
		if cfg.KeepTuples {
			res.Tuples = append(res.Tuples, kept)
		}

		mttf := cfg.MTTFMean + r.NormFloat64()*cfg.MTTFStd
		if mttf < 1 {
			mttf = 1
		}
		s := &source.Source{
			Name:           fmt.Sprintf("src-%03d-b%02d", i, baseIdx),
			Schema:         schema.NewSchema(attrs...),
			Cardinality:    card,
			Signature:      sig,
			AttrSignatures: attrSigs,
			Characteristics: map[string]float64{
				"mttf": mttf,
				// Per-source query latency in milliseconds, used by the
				// mediator's cost simulation and available as a QEF.
				"latency": 50 + r.Float64()*450,
			},
		}
		id, err := res.Universe.Add(s)
		if err != nil {
			return nil, err
		}
		if conformant {
			res.Conformant = append(res.Conformant, id)
		}
	}
	// Materialize the universe aggregates (total cardinality, |∪U| estimate)
	// at generation time rather than inside the first Coverage evaluation.
	res.Universe.Precompute()
	return res, nil
}

// perturb applies the §7.1 schema perturbation: per attribute, remove with
// PRemove or replace its *name* with a noise word with PReplace (the data
// behind it is unchanged, so the origin concept is kept); then append up to
// MaxAdd genuine noise attributes (origin -1). The result always keeps at
// least one attribute.
func perturb(r *rand.Rand, attrs []string, origins []int, cfg Config) ([]string, []int) {
	outAttrs := make([]string, 0, len(attrs)+cfg.MaxAdd)
	outOrigins := make([]int, 0, len(attrs)+cfg.MaxAdd)
	for i, a := range attrs {
		roll := r.Float64()
		switch {
		case roll < cfg.PRemove:
			// removed
		case roll < cfg.PRemove+cfg.PReplace:
			outAttrs = append(outAttrs, noiseWords[r.Intn(len(noiseWords))])
			outOrigins = append(outOrigins, origins[i]) // renamed, not re-sourced
		default:
			outAttrs = append(outAttrs, a)
			outOrigins = append(outOrigins, origins[i])
		}
	}
	if cfg.MaxAdd > 0 {
		for n := r.Intn(cfg.MaxAdd + 1); n > 0; n-- {
			outAttrs = append(outAttrs, noiseWords[r.Intn(len(noiseWords))])
			outOrigins = append(outOrigins, -1)
		}
	}
	if len(outAttrs) == 0 {
		pick := r.Intn(len(attrs))
		outAttrs = append(outAttrs, attrs[pick])
		outOrigins = append(outOrigins, origins[pick])
	}
	return dedup(outAttrs, outOrigins)
}

// dedup removes duplicate attribute names (keeping first occurrences, with
// their origins) so that source schemas remain lists of distinct attributes.
func dedup(attrs []string, origins []int) ([]string, []int) {
	seen := make(map[string]struct{}, len(attrs))
	outA := attrs[:0]
	outO := origins[:0]
	for i, a := range attrs {
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		outA = append(outA, a)
		outO = append(outO, origins[i])
	}
	return outA, outO
}

// ConceptSources returns, for each concept, how many of the sources in sel
// express it (a source counts once per concept). It is the ground-truth view
// Table 1's "missed" column needs.
func ConceptSources(u *source.Universe, sel []schema.SourceID) map[int]int {
	counts := make(map[int]int)
	for _, id := range sel {
		s := u.Source(id)
		seen := make(map[int]bool)
		for j := 0; j < s.Schema.Len(); j++ {
			if ci, ok := bamm.ConceptOf(s.Schema.Name(j)); ok && !seen[ci] {
				seen[ci] = true
				counts[ci]++
			}
		}
	}
	return counts
}
