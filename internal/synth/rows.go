package synth

import (
	"fmt"

	"mube/internal/bamm"
	"mube/internal/schema"
	"mube/internal/source"
	"mube/internal/store"
	"mube/internal/strutil"
)

// Materialize converts the kept tuple IDs of the given sources into row
// tables for the mediator query substrate. Generation requires
// Config.KeepTuples.
//
// Values are a deterministic function of (tuple ID, concept): the same
// logical book at two different sources renders the same title/author/price
// even when the sources name the attributes differently — which is what
// makes cross-source deduplication in the mediator meaningful. Off-domain
// (noise) attributes derive their values from the attribute name, so they
// never join across concepts.
func Materialize(res *Result, ids []schema.SourceID) (map[schema.SourceID]*store.Table, error) {
	if res.Tuples == nil {
		return nil, fmt.Errorf("synth: Materialize requires Config.KeepTuples")
	}
	out := make(map[schema.SourceID]*store.Table, len(ids))
	for _, id := range ids {
		if int(id) >= len(res.Tuples) {
			return nil, fmt.Errorf("synth: source %d out of range", id)
		}
		s := res.Universe.Source(id)
		origins := res.AttrOrigins[id]
		scale := VocabScale(res.Config)
		tb := store.NewTable(s.Schema)
		for _, tuple := range res.Tuples[id] {
			row := make(store.Row, s.Schema.Len())
			for a := 0; a < s.Schema.Len(); a++ {
				row[a] = ValueForOrigin(tuple, origins[a], s.Schema.Name(a), scale)
			}
			tb.MustAppend(row)
		}
		out[id] = tb
	}
	return out, nil
}

// conceptVocab bounds the number of distinct values per concept, so joins
// and duplicates occur at realistic rates (e.g. far fewer authors and
// publishers than titles).
var conceptVocab = [bamm.NumConcepts]uint64{
	bamm.ConceptTitle:        200_000,
	bamm.ConceptAuthor:       20_000,
	bamm.ConceptISBN:         1_000_000,
	bamm.ConceptPublisher:    2_000,
	bamm.ConceptKeyword:      5_000,
	bamm.ConceptSubject:      500,
	bamm.ConceptPrice:        10_000,
	bamm.ConceptFormat:       6,
	bamm.ConceptPubYear:      80,
	bamm.ConceptEdition:      12,
	bamm.ConceptLanguage:     30,
	bamm.ConceptCondition:    5,
	bamm.ConceptSeller:       800,
	bamm.ConceptAvailability: 3,
}

// VocabScale returns the vocabulary scale factor implied by a generation
// config: scaled-down universes have proportionally fewer authors, subjects,
// and titles, so same-concept value sets still overlap realistically.
func VocabScale(cfg Config) float64 {
	return float64(cfg.PoolSize) / float64(Defaults().PoolSize)
}

// vocabOf returns concept ci's vocabulary size under a scale factor.
func vocabOf(ci int, scale float64) uint64 {
	v := uint64(float64(conceptVocab[ci]) * scale)
	if v < 4 {
		v = 4
	}
	return v
}

// ValueFor derives the value of one attribute for one logical tuple from the
// attribute's *name*, at full vocabulary scale. It is pure: the same
// (tuple, concept-of-name) pair always yields the same value.
func ValueFor(tuple source.TupleID, attrName string) string {
	ci, ok := bamm.ConceptOf(attrName)
	if !ok {
		ci = -1
	}
	return ValueForOrigin(tuple, ci, attrName, 1)
}

// ValueForOrigin derives the value from an explicit origin concept —
// renamed attributes (noise name, real concept behind it) render their
// original concept's values, which is what lets data-based matching recover
// them. scale is the vocabulary scale (VocabScale of the generating config).
func ValueForOrigin(tuple source.TupleID, origin int, attrName string, scale float64) string {
	if origin < 0 {
		// Genuine noise: value space tied to the (normalized) name so
		// different noise attributes never produce joinable values.
		return fmt.Sprintf("%s-%03d", strutil.Normalize(attrName), mix(tuple, 9999)%997)
	}
	return fmt.Sprintf("%s-%06d", bamm.ConceptName(origin), mix(tuple, uint64(origin))%vocabOf(origin, scale))
}

// ValueID is the integer identity of the same value — what the per-attribute
// MinHash sketches insert, avoiding string formatting in the generation
// loop. Two attributes share a ValueID exactly when ValueForOrigin renders
// the same string for them.
func ValueID(tuple source.TupleID, origin int, attrName string, scale float64) uint64 {
	if origin < 0 {
		var h uint64 = 14695981039346656037
		norm := strutil.Normalize(attrName)
		for i := 0; i < len(norm); i++ {
			h ^= uint64(norm[i])
			h *= 1099511628211
		}
		return h ^ (mix(tuple, 9999) % 997)
	}
	return uint64(origin+1)<<40 | mix(tuple, uint64(origin))%vocabOf(origin, scale)
}

// mix hashes (tuple, salt) with the SplitMix64 finalizer.
func mix(tuple source.TupleID, salt uint64) uint64 {
	x := uint64(tuple) + salt*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
