package synth

import (
	"fmt"
	"math"
	"testing"

	"mube/internal/constraint"
	"mube/internal/match"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/source"
)

// smallCfg keeps tuple counts tiny so tests run in milliseconds.
func smallCfg(n int) Config {
	c := Scaled(0.001)
	c.NumSources = n
	c.Sig = pcsa.Config{NumMaps: 64}
	return c
}

// TestStreamMatchesGenerate pins the refactor: streaming with a collecting
// yield must reproduce Generate exactly — same names, schemas, cardinalities,
// signature estimates, and metadata, in the same order.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := smallCfg(60)
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	err = Stream(cfg, func(s *source.Source, m SourceMeta) error {
		want := res.Universe.Source(schema.SourceID(i))
		if s.Name != want.Name {
			return fmt.Errorf("source %d: name %q != %q", i, s.Name, want.Name)
		}
		if s.Cardinality != want.Cardinality {
			return fmt.Errorf("source %d: cardinality %d != %d", i, s.Cardinality, want.Cardinality)
		}
		if got, want := fmt.Sprint(s.Schema.Attrs), fmt.Sprint(want.Schema.Attrs); got != want {
			return fmt.Errorf("source %d: attrs %v != %v", i, got, want)
		}
		if math.Float64bits(s.Signature.Estimate()) != math.Float64bits(want.Signature.Estimate()) {
			return fmt.Errorf("source %d: signature estimates differ", i)
		}
		if m.BaseSchema != res.BaseSchema[i] || m.Specialty != res.Specialty[i] {
			return fmt.Errorf("source %d: metadata differs", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != cfg.NumSources {
		t.Fatalf("streamed %d sources, want %d", i, cfg.NumSources)
	}
}

// TestGenerateUniverseDeterministic pins per-seed determinism of the lean
// entry point in both modes.
func TestGenerateUniverseDeterministic(t *testing.T) {
	for _, domains := range []int{0, 4} {
		cfg := smallCfg(48)
		cfg.Domains = domains
		a, err := GenerateUniverse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateUniverse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() != b.Len() {
			t.Fatalf("domains=%d: sizes differ", domains)
		}
		for i := 0; i < a.Len(); i++ {
			sa, sb := a.Source(schema.SourceID(i)), b.Source(schema.SourceID(i))
			if sa.Name != sb.Name || sa.Cardinality != sb.Cardinality ||
				math.Float64bits(sa.Signature.Estimate()) != math.Float64bits(sb.Signature.Estimate()) {
				t.Fatalf("domains=%d: source %d differs between runs", domains, i)
			}
		}
	}
}

// TestDomainsDecompose checks the point of multi-domain generation: the
// matcher's shard index must split a multi-domain universe into at least one
// group per domain, and no mediated GA may span domains.
func TestDomainsDecompose(t *testing.T) {
	cfg := smallCfg(40)
	cfg.Domains = 5
	cfg.PRemove = 0.3
	u, err := GenerateUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := match.New(u, match.Config{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sh := m.NewSharded(constraint.Set{})
	groups := sh.SourceGroups()
	if len(groups) < cfg.Domains {
		t.Fatalf("got %d source groups, want ≥ %d (one per domain)", len(groups), cfg.Domains)
	}
	// Every source's domain is recoverable from its name suffix; groups must
	// be domain-pure.
	domainOf := func(id schema.SourceID) string {
		name := u.Source(id).Name
		return name[len(name)-4:]
	}
	for _, g := range groups {
		for _, s := range g[1:] {
			if domainOf(s) != domainOf(g[0]) {
				t.Fatalf("group %v mixes domains %s and %s", g, domainOf(g[0]), domainOf(s))
			}
		}
	}
}

// TestDomainVocabDisjoint checks that vocabularies never share a name across
// domains or concepts.
func TestDomainVocabDisjoint(t *testing.T) {
	v := domainVocab(7, 16, 12)
	seen := map[string]bool{}
	for d := range v {
		for _, n := range v[d] {
			if seen[n] {
				t.Fatalf("duplicate vocab name %q", n)
			}
			if len(n) != 12 {
				t.Fatalf("vocab name %q not 12 chars", n)
			}
			seen[n] = true
		}
	}
}
