package synth

import (
	"math"
	"testing"

	"mube/internal/bamm"
	"mube/internal/pcsa"
	"mube/internal/schema"
	"mube/internal/testutil"
)

// tiny returns a fast test configuration.
func tiny(n int, seed int64) Config {
	c := Scaled(0.005) // cardinalities ≈ [50, 5000]
	c.NumSources = n
	c.Seed = seed
	c.Sig = pcsa.Config{NumMaps: 64}
	return c
}

func TestGenerateShape(t *testing.T) {
	res, err := Generate(tiny(120, 7))
	if err != nil {
		t.Fatal(err)
	}
	u := res.Universe
	if u.Len() != 120 {
		t.Fatalf("universe size = %d", u.Len())
	}
	if len(res.Conformant) != bamm.NumSchemas() {
		t.Errorf("conformant sources = %d, want %d", len(res.Conformant), bamm.NumSchemas())
	}
	// The first 50 sources are exact copies of the base schemas.
	base := bamm.Schemas()
	for _, id := range res.Conformant {
		got := u.Source(id).Schema
		want := base[res.BaseSchema[id]]
		if got.String() != want.String() {
			t.Errorf("conformant source %d schema %v != base %v", id, got, want)
		}
	}
	for i := 0; i < u.Len(); i++ {
		s := u.Source(schema.SourceID(i))
		if !s.Cooperative() {
			t.Errorf("source %d not cooperative", i)
		}
		if s.Schema.Len() == 0 {
			t.Errorf("source %d has empty schema", i)
		}
		if _, ok := s.Characteristic("mttf"); !ok {
			t.Errorf("source %d missing mttf", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(tiny(60, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tiny(60, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		sa, sb := a.Universe.Source(schema.SourceID(i)), b.Universe.Source(schema.SourceID(i))
		if sa.Schema.String() != sb.Schema.String() {
			t.Fatalf("source %d schemas differ across runs", i)
		}
		if sa.Cardinality != sb.Cardinality {
			t.Fatalf("source %d cardinalities differ", i)
		}
		if !testutil.AlmostEqual(sa.Signature.Estimate(), sb.Signature.Estimate()) {
			t.Fatalf("source %d signatures differ", i)
		}
		if !testutil.AlmostEqual(sa.Characteristics["mttf"], sb.Characteristics["mttf"]) {
			t.Fatalf("source %d mttf differs", i)
		}
	}
	// A different seed changes the universe.
	c, err := Generate(tiny(60, 4))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 50; i < 60; i++ { // perturbed region
		if a.Universe.Source(schema.SourceID(i)).Schema.String() != c.Universe.Source(schema.SourceID(i)).Schema.String() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical perturbations")
	}
}

func TestCardinalityRange(t *testing.T) {
	cfg := tiny(200, 5)
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var atMin int
	for i := 0; i < res.Universe.Len(); i++ {
		c := res.Universe.Source(schema.SourceID(i)).Cardinality
		if c < cfg.MinCard || c > cfg.MaxCard {
			t.Errorf("source %d cardinality %d outside [%d,%d]", i, c, cfg.MinCard, cfg.MaxCard)
		}
		if c < cfg.MinCard*2 {
			atMin++
		}
	}
	// Zipf: most sources sit near the minimum.
	if atMin < res.Universe.Len()/2 {
		t.Errorf("only %d/%d sources near MinCard; expected Zipf concentration", atMin, res.Universe.Len())
	}
}

func TestSpecialtyAssignment(t *testing.T) {
	res, err := Generate(tiny(40, 2))
	if err != nil {
		t.Fatal(err)
	}
	spec := 0
	for _, s := range res.Specialty {
		if s {
			spec++
		}
	}
	if spec != 20 {
		t.Errorf("specialty sources = %d/40, want half", spec)
	}
}

func TestPerturbationKeepsSchemasNonEmptyAndDeduped(t *testing.T) {
	res, err := Generate(tiny(300, 11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 50; i < res.Universe.Len(); i++ {
		s := res.Universe.Source(schema.SourceID(i)).Schema
		if s.Len() == 0 {
			t.Fatalf("perturbed source %d empty", i)
		}
		seen := map[string]bool{}
		for j := 0; j < s.Len(); j++ {
			if seen[s.Name(j)] {
				t.Errorf("source %d repeats attribute %q", i, s.Name(j))
			}
			seen[s.Name(j)] = true
		}
	}
}

func TestNoiseWordsAreOffDomain(t *testing.T) {
	for _, w := range NoiseWords() {
		if _, ok := bamm.ConceptOf(w); ok {
			t.Errorf("noise word %q collides with a BAMM concept variant", w)
		}
	}
	if len(NoiseWords()) < 100 {
		t.Errorf("noise word list too small: %d", len(NoiseWords()))
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumSources = 0 },
		func(c *Config) { c.MinCard = 0 },
		func(c *Config) { c.MaxCard = c.MinCard - 1 },
		func(c *Config) { c.PoolSize = 1 },
		func(c *Config) { c.ZipfS = 0 },
		func(c *Config) { c.PRemove = 1.5 },
		func(c *Config) { c.PReplace = -0.1 },
		func(c *Config) { c.SpecialtyPct = 2 },
	}
	for i, mutate := range bad {
		c := tiny(10, 1)
		mutate(&c)
		if _, err := Generate(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSignatureEstimatesTrackCardinality(t *testing.T) {
	res, err := Generate(tiny(30, 9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Universe.Len(); i++ {
		s := res.Universe.Source(schema.SourceID(i))
		est := s.Signature.Estimate()
		// Tuples are sampled with replacement from the pool, so the number
		// of distinct tuples is at most the cardinality (and the estimate
		// is noisy with 64 bitmaps).
		if est > float64(s.Cardinality)*1.6 {
			t.Errorf("source %d: distinct estimate %.0f far above cardinality %d", i, est, s.Cardinality)
		}
		if est <= 0 {
			t.Errorf("source %d: empty signature", i)
		}
	}
}

func TestConceptSources(t *testing.T) {
	res, err := Generate(tiny(50, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Source 0 is base schema 0: {title, author, isbn}.
	counts := ConceptSources(res.Universe, []schema.SourceID{0})
	for _, ci := range []int{bamm.ConceptTitle, bamm.ConceptAuthor, bamm.ConceptISBN} {
		if counts[ci] != 1 {
			t.Errorf("concept %s count = %d, want 1", bamm.ConceptName(ci), counts[ci])
		}
	}
	if len(counts) != 3 {
		t.Errorf("concept count map = %v, want 3 entries", counts)
	}
	// Two copies of schema 0 (sources 0 and 50 share base when N>50 —
	// verify via BaseSchema instead of assuming).
	if res.BaseSchema[0] != 0 {
		t.Errorf("BaseSchema[0] = %d", res.BaseSchema[0])
	}
}

func TestScaled(t *testing.T) {
	c := Scaled(0.01)
	if c.MinCard != 100 || c.MaxCard != 10000 {
		t.Errorf("Scaled(0.01) cards = [%d,%d]", c.MinCard, c.MaxCard)
	}
	if c.PoolSize != 40000 {
		t.Errorf("Scaled(0.01) pool = %d", c.PoolSize)
	}
	// Floors keep extreme factors usable.
	tinyc := Scaled(1e-9)
	if tinyc.MinCard < 16 || tinyc.MaxCard < 64 {
		t.Errorf("Scaled floor broken: %+v", tinyc)
	}
	if math.IsNaN(float64(tinyc.PoolSize)) {
		t.Error("pool NaN")
	}
}

func TestAttrSignaturesGeneration(t *testing.T) {
	c := tiny(60, 4)
	c.AttrSignatures = true
	res, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Universe.Len(); i++ {
		s := res.Universe.Source(schema.SourceID(i))
		if len(s.AttrSignatures) != s.Schema.Len() {
			t.Fatalf("source %d: %d sketches for %d attrs", i, len(s.AttrSignatures), s.Schema.Len())
		}
		for a, sig := range s.AttrSignatures {
			if sig == nil || sig.Empty() {
				t.Fatalf("source %d attr %d: empty sketch", i, a)
			}
		}
	}
	// Same-concept attributes across sources overlap in value space far
	// more than different-concept ones. Sources 0 and 50 share base schema
	// 0 ({title, author, isbn}); compare their biggest-cardinality pair.
	s0, s50 := res.Universe.Source(0), res.Universe.Source(50)
	if res.BaseSchema[50] != 0 {
		t.Skip("source 50 not a schema-0 derivative at this seed")
	}
	// Find the title attribute in both (50 may be perturbed).
	find := func(sid schema.SourceID, concept int) int {
		for a, ci := range res.AttrOrigins[sid] {
			if ci == concept {
				return a
			}
		}
		return -1
	}
	a0, a50 := find(0, bamm.ConceptTitle), find(50, bamm.ConceptTitle)
	if a0 < 0 || a50 < 0 {
		t.Skip("title dropped by perturbation at this seed")
	}
	same, err := s0.AttrSignatures[a0].Jaccard(s50.AttrSignatures[a50])
	if err != nil {
		t.Fatal(err)
	}
	b0 := find(0, bamm.ConceptAuthor)
	cross, err := s0.AttrSignatures[b0].Jaccard(s50.AttrSignatures[a50])
	if err != nil {
		t.Fatal(err)
	}
	if same <= cross {
		t.Errorf("same-concept Jaccard %v not above cross-concept %v", same, cross)
	}
}

func TestAttrOriginsTrackRenames(t *testing.T) {
	c := tiny(200, 8)
	c.PReplace = 0.5
	res, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	renamed := 0
	for i := 50; i < res.Universe.Len(); i++ {
		s := res.Universe.Source(schema.SourceID(i))
		for a := 0; a < s.Schema.Len(); a++ {
			origin := res.AttrOrigins[i][a]
			_, byName := bamm.ConceptOf(s.Schema.Name(a))
			if origin >= 0 && !byName {
				renamed++ // noise name, real concept behind it
			}
			if byName {
				ci, _ := bamm.ConceptOf(s.Schema.Name(a))
				if origin != ci {
					t.Fatalf("source %d attr %d: name says %d, origin says %d", i, a, ci, origin)
				}
			}
		}
	}
	if renamed < 50 {
		t.Errorf("only %d renamed attributes at PReplace=0.5; perturbation not tracking origins?", renamed)
	}
}

// TestNamePrefixOnlyRenames: the prefix must change source names and nothing
// else — name formatting draws nothing from the RNG, so both BAMM and
// multi-domain generation stay draw-for-draw identical.
func TestNamePrefixOnlyRenames(t *testing.T) {
	for _, domains := range []int{0, 3} {
		cfg := tiny(12, 5)
		cfg.Domains = domains
		plain, err := GenerateUniverse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.NamePrefix = "e07-"
		prefixed, err := GenerateUniverse(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Len() != prefixed.Len() {
			t.Fatalf("domains=%d: len %d vs %d", domains, plain.Len(), prefixed.Len())
		}
		for i := range plain.Sources() {
			a, b := plain.Source(schema.SourceID(i)), prefixed.Source(schema.SourceID(i))
			if b.Name != "e07-"+a.Name {
				t.Fatalf("domains=%d source %d: name %q, want %q", domains, i, b.Name, "e07-"+a.Name)
			}
			if a.Cardinality != b.Cardinality || a.Schema.String() != b.Schema.String() {
				t.Fatalf("domains=%d source %d: prefix perturbed generation: %+v vs %+v", domains, i, a, b)
			}
			if (a.Signature == nil) != (b.Signature == nil) {
				t.Fatalf("domains=%d source %d: signature presence differs", domains, i)
			}
			if a.Signature != nil && math.Float64bits(a.Signature.Estimate()) != math.Float64bits(b.Signature.Estimate()) {
				t.Fatalf("domains=%d source %d: signature estimate differs", domains, i)
			}
		}
	}
}
