package synth

// noiseWords is the list of "words unrelated to the Books domain" used by
// schema perturbation (§7.1): replaced or added attributes draw their names
// from here. None of these normalizes to a BAMM concept variant (asserted by
// tests), so every noise attribute is off-domain by construction.
var noiseWords = []string{
	"altitude", "anchor", "antenna", "aperture", "asphalt", "axle",
	"ballast", "barometer", "battery", "bearing", "blizzard", "boiler",
	"bracket", "bumper", "cabin", "caliper", "camshaft", "canyon",
	"carburetor", "cargo", "chassis", "chimney", "circuit", "clutch",
	"compass", "compressor", "conveyor", "crankshaft", "current", "cyclone",
	"dashboard", "delta", "derrick", "dynamo", "elevation", "engine",
	"estuary", "exhaust", "fairway", "fender", "fjord", "flange",
	"floodgate", "fuselage", "gasket", "gearbox", "geyser", "girder",
	"glacier", "gradient", "granite", "gravel", "gyroscope", "harbor",
	"headwind", "horizon", "hydrant", "ignition", "incline", "ingot",
	"isthmus", "jetty", "keel", "lagoon", "lathe", "lattice",
	"lighthouse", "limestone", "locomotive", "magma", "manifold", "marina",
	"meridian", "mesa", "monsoon", "moraine", "mudflat", "nacelle",
	"nozzle", "odometer", "outcrop", "overpass", "paddock", "pendulum",
	"peninsula", "pier", "piston", "plateau", "pontoon", "prairie",
	"propeller", "pulley", "pylon", "quarry", "quay", "radiator",
	"rampart", "ravine", "reef", "reservoir", "riverbed", "rudder",
	"runway", "sandbar", "scaffold", "seawall", "sediment", "silo",
	"sprocket", "spillway", "stratum", "summit", "tailwind", "tarmac",
	"terrace", "throttle", "tides", "topsoil", "torque", "trellis",
	"tributary", "tundra", "turbine", "valve", "viaduct", "volcano",
	"watershed", "wharf", "windlass", "winch", "zenith", "zephyr",
}

// NoiseWords returns the perturbation word list (copy).
func NoiseWords() []string {
	return append([]string(nil), noiseWords...)
}
