package synth

import (
	"strings"
	"testing"

	"mube/internal/bamm"
	"mube/internal/pcsa"
	"mube/internal/schema"
)

func keepTuplesCfg(n int) Config {
	c := Scaled(0.002)
	c.NumSources = n
	c.Seed = 5
	c.Sig = pcsa.Config{NumMaps: 64}
	c.KeepTuples = true
	return c
}

func TestMaterializeRequiresKeepTuples(t *testing.T) {
	cfg := keepTuplesCfg(5)
	cfg.KeepTuples = false
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(res, res.Universe.IDs()); err == nil {
		t.Error("Materialize without KeepTuples accepted")
	}
}

func TestMaterializeShapes(t *testing.T) {
	res, err := Generate(keepTuplesCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	tables, err := Materialize(res, res.Universe.IDs())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 10 {
		t.Fatalf("tables = %d", len(tables))
	}
	for id, tb := range tables {
		s := res.Universe.Source(id)
		if int64(tb.Len()) != s.Cardinality {
			t.Errorf("source %d: %d rows, cardinality %d", id, tb.Len(), s.Cardinality)
		}
		if tb.Schema().Len() != s.Schema.Len() {
			t.Errorf("source %d: table arity mismatch", id)
		}
	}
	if _, err := Materialize(res, []schema.SourceID{99}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestValueForDeterministicAndConceptConsistent(t *testing.T) {
	// The same logical tuple renders the same value through any variant of
	// one concept — the property cross-source deduplication relies on.
	if ValueFor(12345, "title") != ValueFor(12345, "book title") {
		t.Error("title variants disagree on the same tuple")
	}
	if ValueFor(12345, "author") != ValueFor(12345, "writer") {
		t.Error("author variants disagree on the same tuple")
	}
	// Different concepts of the same tuple differ.
	if ValueFor(12345, "title") == ValueFor(12345, "author") {
		t.Error("different concepts share a value")
	}
	// Different tuples usually differ on high-vocabulary concepts.
	if ValueFor(1, "isbn") == ValueFor(2, "isbn") {
		t.Error("isbn collision on adjacent tuples (vocab too small?)")
	}
	// Pure function.
	if ValueFor(777, "price") != ValueFor(777, "price") {
		t.Error("ValueFor not deterministic")
	}
	// Noise attributes namespace their values by attribute name.
	if ValueFor(5, "engine") == ValueFor(5, "turbine") {
		t.Error("noise attributes share a value space")
	}
	if !strings.HasPrefix(ValueFor(5, "engine"), "engine-") {
		t.Errorf("noise value = %q", ValueFor(5, "engine"))
	}
	if !strings.HasPrefix(ValueFor(5, "book title"), "title-") {
		t.Errorf("concept value = %q", ValueFor(5, "book title"))
	}
}

func TestMaterializedRowsJoinAcrossSources(t *testing.T) {
	// Two sources sharing tuple IDs must materialize identical values for
	// shared concepts, regardless of attribute naming.
	res, err := Generate(keepTuplesCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	tables, err := Materialize(res, res.Universe.IDs())
	if err != nil {
		t.Fatal(err)
	}
	// Find a tuple shared between source 0 and source 5... universes are
	// small; scan for any shared tuple between the first two sources.
	inFirst := map[uint64]int{}
	for i, tu := range res.Tuples[0] {
		inFirst[tu] = i
	}
	s0 := res.Universe.Source(0)
	for j, tu := range res.Tuples[1] {
		i, shared := inFirst[tu]
		if !shared {
			continue
		}
		s1 := res.Universe.Source(1)
		// Compare values for attributes expressing the same concept.
		for a0 := 0; a0 < s0.Schema.Len(); a0++ {
			v0 := tables[0].Row(i)[a0]
			for a1 := 0; a1 < s1.Schema.Len(); a1++ {
				if sameConcept(s0.Schema.Name(a0), s1.Schema.Name(a1)) {
					if v1 := tables[1].Row(j)[a1]; v0 != v1 {
						t.Fatalf("shared tuple %d renders %q vs %q", tu, v0, v1)
					}
				}
			}
		}
		return // one shared tuple suffices
	}
	t.Skip("no shared tuple between first two sources at this seed")
}

// sameConcept reports whether two attribute names map to one concept.
func sameConcept(a, b string) bool {
	va, oka := bamm.ConceptOf(a)
	vb, okb := bamm.ConceptOf(b)
	return oka && okb && va == vb
}
