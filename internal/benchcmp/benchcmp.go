// Package benchcmp is the shared direction-aware metric comparison used by
// mube-benchjson (-compare between archived bench reports) and mube-trace
// (-compare between trace profiles): scoped metric maps diff into rows, each
// row's fractional delta is judged against the metric's better-direction, and
// changes past the tolerance flag as regressions.
package benchcmp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// Directions classifies metrics by which way "better" points. Keys in
// neither map are informational: their deltas print but never flag, because
// "worse" is undefined for them (best_q depends on the seed, evals on the
// budget).
type Directions struct {
	HigherBetter map[string]bool
	LowerBetter  map[string]bool
}

// Default covers the metrics the bench and trace tooling archives.
var Default = Directions{
	HigherBetter: map[string]bool{
		"evals_per_sec":     true,
		"memo_hit_rate":     true,
		"delta_hit_rate":    true,
		"q_recovery":        true,
		"partition_speedup": true,
	},
	LowerBetter: map[string]bool{
		"ns/op":                    true,
		"B/op":                     true,
		"allocs/op":                true,
		"merge_ops_per_eval":       true,
		"counting_merges_per_eval": true,
		"warm_evals_frac":          true,
		"cum_ns":                   true,
		"self_ns":                  true,
		"pair_candidates":          true,
		"pair_candidates_frac":     true,
		"shard_build_ns":           true,
		"solve_ms_1m":              true,
	},
}

// Tolerance is the fractional change in the worse direction above which a
// metric is flagged (and strict callers fail the run).
const Tolerance = 0.10

// Row is one metric diffed between the previous and current report.
type Row struct {
	Scope      string // benchmark name / phase path, or "run" for run-level metrics
	Metric     string
	Old, New   float64
	Regression bool
}

// Delta returns the fractional change from old to new (+0.25 = new is 25%
// higher). Infinite when a zero baseline became non-zero.
func (r Row) Delta() float64 {
	if r.Old == 0 {
		if r.New == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (r.New - r.Old) / math.Abs(r.Old)
}

// Compare diffs every scoped metric present in both maps and judges each
// against dirs. Rows sort by scope then metric, with the "run" scope last;
// the count of flagged regressions is returned alongside.
func Compare(prev, next map[string]map[string]float64, dirs Directions) ([]Row, int) {
	var rows []Row
	for scope, nm := range next {
		om, ok := prev[scope]
		if !ok {
			continue
		}
		for metric, nv := range nm {
			ov, ok := om[metric]
			if !ok {
				continue
			}
			rows = append(rows, Row{Scope: scope, Metric: metric, Old: ov, New: nv})
		}
	}
	regressions := 0
	for i := range rows {
		d := rows[i].Delta()
		switch {
		case dirs.HigherBetter[rows[i].Metric] && d < -Tolerance:
			rows[i].Regression = true
		case dirs.LowerBetter[rows[i].Metric] && d > Tolerance:
			rows[i].Regression = true
		}
		if rows[i].Regression {
			regressions++
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Scope != rows[j].Scope {
			// "run" rows last; other scopes alphabetical.
			if rows[i].Scope == "run" || rows[j].Scope == "run" {
				return rows[j].Scope == "run"
			}
			return rows[i].Scope < rows[j].Scope
		}
		return rows[i].Metric < rows[j].Metric
	})
	return rows, regressions
}

// Render prints the diff as an aligned table, with a summary line when any
// metric regressed.
func Render(w io.Writer, rows []Row, regressions int) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scope\tmetric\told\tnew\tdelta")
	for _, r := range rows {
		flag := ""
		if r.Regression {
			flag = "  REGRESSION"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.4g\t%+.1f%%%s\n",
			r.Scope, r.Metric, r.Old, r.New, 100*r.Delta(), flag)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d metric(s) regressed by more than %.0f%%\n",
			regressions, 100*Tolerance)
	}
	return nil
}
