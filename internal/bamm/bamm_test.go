package bamm

import (
	"testing"

	"mube/internal/strutil"
)

func TestCorpusShape(t *testing.T) {
	if NumSchemas() != 50 {
		t.Errorf("NumSchemas = %d, want 50 (paper §7.1)", NumSchemas())
	}
	if len(Concepts()) != NumConcepts || NumConcepts != 14 {
		t.Errorf("concepts = %d, want 14 (paper §7.3)", len(Concepts()))
	}
	for i, s := range Schemas() {
		if s.Len() < 2 {
			t.Errorf("schema %d has %d attributes, want ≥ 2", i, s.Len())
		}
	}
}

func TestNoDuplicateAttributesWithinSchema(t *testing.T) {
	for i, s := range Schemas() {
		seen := map[string]bool{}
		for j := 0; j < s.Len(); j++ {
			n := strutil.Normalize(s.Name(j))
			if seen[n] {
				t.Errorf("schema %d repeats attribute %q", i, n)
			}
			seen[n] = true
		}
	}
}

func TestSchemaAttributesDistinctConcepts(t *testing.T) {
	// A query interface asks for each concept at most once; two attributes
	// of one schema must not express the same concept (this also keeps
	// every seeded GA valid during clustering).
	for i, s := range Schemas() {
		seen := map[int]string{}
		for j := 0; j < s.Len(); j++ {
			ci, ok := ConceptOf(s.Name(j))
			if !ok {
				continue
			}
			if prev, dup := seen[ci]; dup {
				t.Errorf("schema %d expresses concept %s twice: %q and %q",
					i, ConceptName(ci), prev, s.Name(j))
			}
			seen[ci] = s.Name(j)
		}
	}
}

func TestVariantsBelongToTheirConcept(t *testing.T) {
	for ci, c := range Concepts() {
		for _, v := range c.Variants {
			got, ok := ConceptOf(v)
			if !ok || got != ci {
				t.Errorf("ConceptOf(%q) = (%d,%v), want (%d,true)", v, got, ok, ci)
			}
		}
	}
}

func TestVariantsAreUniqueAcrossConcepts(t *testing.T) {
	seen := map[string]int{}
	for ci, c := range Concepts() {
		for _, v := range c.Variants {
			n := strutil.Normalize(v)
			if prev, dup := seen[n]; dup && prev != ci {
				t.Errorf("variant %q claimed by concepts %s and %s", v, ConceptName(prev), ConceptName(ci))
			}
			seen[n] = ci
		}
	}
}

func TestConceptOfUnknown(t *testing.T) {
	for _, name := range []string{"zeppelin", "engine size", "", "destination"} {
		if _, ok := ConceptOf(name); ok {
			t.Errorf("ConceptOf(%q) claims a concept", name)
		}
	}
	// Normalization applies: case and underscores don't matter.
	if ci, ok := ConceptOf("Author_Name"); !ok || ci != ConceptAuthor {
		t.Errorf("ConceptOf(Author_Name) = (%d,%v)", ci, ok)
	}
}

func TestEveryConceptAppearsInCorpus(t *testing.T) {
	counts := make(map[int]int)
	for _, s := range Schemas() {
		for j := 0; j < s.Len(); j++ {
			if ci, ok := ConceptOf(s.Name(j)); ok {
				counts[ci]++
			}
		}
	}
	for ci := 0; ci < NumConcepts; ci++ {
		// Every concept must be expressed by at least two schemas, or no
		// valid GA (β=2) could ever capture it.
		if counts[ci] < 2 {
			t.Errorf("concept %s appears %d times, want ≥ 2", ConceptName(ci), counts[ci])
		}
	}
}

func TestIntraConceptConnectivityAtTheta(t *testing.T) {
	// Concept GAs primarily form through *identical* variant names repeated
	// across sources (similarity 1), but the corpus should also offer a
	// healthy number of distinct-variant pairs that clear θ = 0.5 so that
	// multi-variant GAs arise. Short names ("title", "isbn") intentionally
	// fall below the threshold against their long variants — those are the
	// paper's bridge cases for GA constraints.
	sim := strutil.TriGramJaccard
	connected := 0
	for _, c := range Concepts() {
		found := false
		for i := 0; i < len(c.Variants) && !found; i++ {
			for j := i + 1; j < len(c.Variants) && !found; j++ {
				if sim.Sim(c.Variants[i], c.Variants[j]) >= 0.5 {
					found = true
				}
			}
		}
		if found {
			connected++
		}
	}
	if connected < 12 {
		t.Errorf("only %d/%d concepts have a θ=0.5 variant pair, want ≥ 12", connected, NumConcepts)
	}
}

func TestCrossConceptSeparationAtTheta(t *testing.T) {
	// Variants of different concepts must stay below θ = 0.5, or clustering
	// would produce false GAs the paper says never occur.
	sim := strutil.TriGramJaccard
	cs := Concepts()
	for a := 0; a < len(cs); a++ {
		for b := a + 1; b < len(cs); b++ {
			for _, va := range cs[a].Variants {
				for _, vb := range cs[b].Variants {
					if s := sim.Sim(va, vb); s >= 0.5 {
						t.Errorf("cross-concept pair %q (%s) / %q (%s) has sim %.2f ≥ 0.5",
							va, cs[a].Name, vb, cs[b].Name, s)
					}
				}
			}
		}
	}
}
