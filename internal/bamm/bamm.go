// Package bamm provides the Books-domain schema corpus the experiments are
// built on. The paper uses the 50 Books-domain schemas of the BAMM
// repository (the UIUC Web integration repository); that repository is no
// longer distributed, so this package embeds a corpus authored in the same
// style: 50 Web-query-interface schemas over 14 distinct domain concepts,
// each concept expressed through several realistic attribute-name variants
// (see DESIGN.md, substitution 1).
//
// The corpus gives the experiments the two properties they rely on:
//
//  1. A known ground truth — ConceptOf maps every in-domain attribute name
//     to one of the 14 concepts, so "true GAs", covered attributes, and
//     missed concepts (Table 1) are countable.
//  2. Name variability — variants of one concept range from trivially
//     similar ("keyword"/"keywords") to unreachable without a user bridge
//     ("author"/"writer"), exercising the matching threshold and the
//     Matching-By-Example constraint mechanism.
package bamm

import (
	"mube/internal/schema"
	"mube/internal/strutil"
)

// Concept ids, in the order of the concepts table.
const (
	ConceptTitle = iota
	ConceptAuthor
	ConceptISBN
	ConceptPublisher
	ConceptKeyword
	ConceptSubject
	ConceptPrice
	ConceptFormat
	ConceptPubYear
	ConceptEdition
	ConceptLanguage
	ConceptCondition
	ConceptSeller
	ConceptAvailability
	// NumConcepts is the number of distinct domain concepts — the paper's
	// "up to 14 true GAs".
	NumConcepts = 14
)

// Concept is one domain concept and the attribute-name variants that express
// it across the corpus.
type Concept struct {
	Name     string
	Variants []string
}

// concepts is the ground-truth table.
var concepts = [NumConcepts]Concept{
	{Name: "title", Variants: []string{"title", "book title", "title of book", "title keyword", "book name"}},
	{Name: "author", Variants: []string{"author", "author name", "book author", "authors", "writer"}},
	{Name: "isbn", Variants: []string{"isbn", "isbn number", "isbn code", "isbn 13"}},
	{Name: "publisher", Variants: []string{"publisher", "publisher name", "publishers", "publishing house"}},
	{Name: "keyword", Variants: []string{"keyword", "keywords", "keyword search", "key word"}},
	{Name: "subject", Variants: []string{"subject", "subject area", "subjects", "subject category", "category"}},
	{Name: "price", Variants: []string{"price", "price range", "max price", "list price", "prices"}},
	{Name: "format", Variants: []string{"format", "book format", "formats", "binding"}},
	{Name: "pubyear", Variants: []string{"publication year", "publication date", "pub year", "year of publication", "pub date"}},
	{Name: "edition", Variants: []string{"edition", "edition number", "editions", "first edition"}},
	{Name: "language", Variants: []string{"language", "languages", "book language", "language code"}},
	{Name: "condition", Variants: []string{"condition", "book condition", "conditions", "item condition"}},
	{Name: "seller", Variants: []string{"seller", "seller name", "sellers", "store seller"}},
	{Name: "availability", Variants: []string{"availability", "available", "availability status", "in stock", "stock status"}},
}

// conceptIndex maps normalized variant names to concept ids.
var conceptIndex = func() map[string]int {
	idx := make(map[string]int)
	for ci, c := range concepts {
		for _, v := range c.Variants {
			idx[strutil.Normalize(v)] = ci
		}
	}
	return idx
}()

// Concepts returns the 14-concept ground-truth table.
func Concepts() []Concept {
	out := make([]Concept, NumConcepts)
	copy(out, concepts[:])
	return out
}

// ConceptName returns the name of concept ci.
func ConceptName(ci int) string { return concepts[ci].Name }

// ConceptOf returns the concept expressed by the attribute name (after
// normalization) and true, or 0 and false for names outside the domain
// (e.g. perturbation noise words).
func ConceptOf(name string) (int, bool) {
	ci, ok := conceptIndex[strutil.Normalize(name)]
	return ci, ok
}

// baseSchemas is the 50-schema corpus. Each schema mimics a real bookstore
// or library search form: a handful of attributes, each naming one concept
// through one of its variants. Schema 0..49 are the "original" (conformant)
// schemas that perturbed copies are derived from (§7.1).
var baseSchemas = [][]string{
	{"title", "author", "isbn"},                                   // 0  classic bookstore
	{"keyword", "title", "author", "subject"},                     // 1  library catalog
	{"book title", "author name", "publisher", "price"},           // 2
	{"isbn", "title"},                                             // 3  lookup form
	{"keywords", "category", "price range"},                       // 4  storefront browse
	{"title", "author", "publisher", "publication year", "isbn"},  // 5  full catalog
	{"author", "title", "format", "language"},                     // 6
	{"search title", "writer"},                                    // 7  (odd title variant is off-domain)
	{"title of book", "book author", "isbn number", "edition"},    // 8
	{"keyword", "subject area", "publication date"},               // 9
	{"title", "max price", "condition"},                           // 10 used-books site
	{"author", "title", "binding", "list price"},                  // 11
	{"isbn 13", "title", "publisher name"},                        // 12
	{"book title", "authors", "subjects"},                         // 13
	{"keyword search", "format", "language"},                      // 14
	{"title", "author", "price", "availability"},                  // 15
	{"publication year", "publisher", "title"},                    // 16
	{"title keyword", "author name", "category"},                  // 17
	{"isbn", "condition", "seller"},                               // 18 marketplace
	{"title", "edition", "publisher"},                             // 19
	{"author", "keyword", "in stock"},                             // 20
	{"book title", "price range", "book format"},                  // 21
	{"title", "author", "isbn", "publisher", "subject", "price"},  // 22 power search
	{"keywords", "pub year"},                                      // 23
	{"title", "writer", "publishing house"},                       // 24
	{"author", "subject category", "language code"},               // 25
	{"isbn code", "title", "seller name"},                         // 26
	{"title", "book condition", "prices"},                         // 27
	{"keyword", "author", "title", "format", "edition number"},    // 28
	{"book name", "author", "stock status"},                       // 29
	{"title", "category", "publication date", "publisher"},        // 30
	{"author name", "title of book", "isbn"},                      // 31
	{"key word", "subject", "max price"},                          // 32
	{"title", "author", "year of publication"},                    // 33
	{"isbn", "book format", "availability"},                       // 34
	{"title", "publisher", "language", "price"},                   // 35
	{"author", "title", "sellers"},                                // 36
	{"keyword", "title", "available"},                             // 37
	{"book title", "edition", "item condition"},                   // 38
	{"title", "authors", "subject", "pub date"},                   // 39
	{"isbn number", "publisher", "price"},                         // 40
	{"title", "author", "keyword", "category", "format"},          // 41
	{"book author", "title", "first edition"},                     // 42
	{"title", "languages", "publishers"},                          // 43
	{"keyword", "price", "condition", "seller"},                   // 44
	{"title", "author", "isbn", "availability status"},            // 45
	{"subject", "title", "publication year", "book language"},     // 46
	{"author", "book title", "store seller"},                      // 47
	{"title", "keyword", "editions", "conditions"},                // 48
	{"isbn", "author", "title", "publisher", "price", "in stock"}, // 49
}

// Schemas returns the 50 base Books schemas.
func Schemas() []schema.Schema {
	out := make([]schema.Schema, len(baseSchemas))
	for i, attrs := range baseSchemas {
		out[i] = schema.NewSchema(attrs...)
	}
	return out
}

// NumSchemas is the corpus size.
func NumSchemas() int { return len(baseSchemas) }
