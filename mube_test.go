package mube_test

import (
	"testing"

	"mube"
	"mube/internal/testutil"
)

// TestFacadeEndToEnd drives the whole public API the way a downstream user
// would: build a universe by hand, open a session, solve, give feedback,
// re-solve.
func TestFacadeEndToEnd(t *testing.T) {
	sig := mube.SignatureConfig{NumMaps: 64}
	u := mube.NewUniverse(sig)

	mk := func(name string, lo, hi uint64, attrs ...string) *mube.Source {
		tuples := make([]uint64, 0, hi-lo)
		for x := lo; x < hi; x++ {
			tuples = append(tuples, x)
		}
		s, err := mube.SourceFromTuples(name, mube.NewSchema(attrs...), mube.TupleSlice(tuples), sig)
		if err != nil {
			t.Fatal(err)
		}
		s.SetCharacteristic("latency", float64(10+lo%90))
		return s
	}
	for i, s := range []*mube.Source{
		mk("alpha", 0, 4000, "title", "author", "price"),
		mk("beta", 2000, 8000, "title", "author name"),
		mk("gamma", 0, 3000, "book title", "writer", "price range"),
		mk("delta", 8000, 12000, "title", "author", "price"),
		mube.UncooperativeSource("epsilon", mube.NewSchema("keyword")),
	} {
		if id, err := u.Add(s); err != nil || int(id) != i {
			t.Fatalf("Add %q: id=%d err=%v", s.Name, id, err)
		}
	}

	qefs := append(mube.MainQEFs(),
		mube.CharacteristicQEF{Char: "latency", Agg: mube.WSum(), Invert: true})
	sess, err := mube.NewSession(mube.SessionConfig{
		Universe:      u,
		QEFs:          qefs,
		Weights:       mube.UniformWeights(qefs),
		Match:         mube.MatchConfig{Theta: 0.45},
		MaxSources:    3,
		SolverOptions: mube.SolverOptions{Seed: 2, MaxEvals: 400},
	})
	if err != nil {
		t.Fatal(err)
	}

	sol, err := sess.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Quality <= 0 || len(sol.IDs) == 0 || len(sol.IDs) > 3 {
		t.Fatalf("solution = %+v", sol)
	}

	// Feedback round: require a source and bridge two attributes.
	if err := sess.RequireSource(2); err != nil {
		t.Fatal(err)
	}
	bridge := mube.NewGA(
		mube.AttrRef{Source: 0, Attr: 1}, // author
		mube.AttrRef{Source: 2, Attr: 1}, // writer
	)
	if err := sess.PinGA(bridge); err != nil {
		t.Fatal(err)
	}
	sol2, err := sess.Solve()
	if err != nil {
		t.Fatal(err)
	}
	hasGamma := false
	for _, id := range sol2.IDs {
		if id == 2 {
			hasGamma = true
		}
	}
	if !hasGamma {
		t.Errorf("required source missing: %v", sol2.IDs)
	}
	if sol2.MatchOK && !sol2.Schema.Subsumes(mube.NewMediated(bridge)) {
		t.Error("pinned GA not in output schema")
	}
	if len(sess.History()) != 2 {
		t.Errorf("history = %d iterations", len(sess.History()))
	}
}

func TestFacadeHelpers(t *testing.T) {
	if mube.DefaultSolver().Name() != "tabu" {
		t.Error("default solver is not tabu")
	}
	if _, err := mube.SolverByName("anneal"); err != nil {
		t.Errorf("SolverByName: %v", err)
	}
	if len(mube.AllSolvers()) != 5 {
		t.Errorf("AllSolvers = %d", len(mube.AllSolvers()))
	}
	if mube.SimilarityByName("jaro-winkler") == nil {
		t.Error("SimilarityByName failed")
	}
	if !testutil.AlmostEqual(mube.TriGramJaccard.Sim("author", "author"), 1) {
		t.Error("TriGramJaccard broken")
	}
	if _, err := mube.AggregatorByName("wsum"); err != nil {
		t.Errorf("AggregatorByName: %v", err)
	}
	w := mube.PaperWeights()
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("paper weights sum = %v", sum)
	}
	if mube.DefaultSignatureConfig.NumMaps != 256 {
		t.Errorf("default signature = %+v", mube.DefaultSignatureConfig)
	}
	c := mube.DefaultSynthConfig()
	if c.NumSources != 700 || c.MinCard != 10000 || c.MaxCard != 1000000 || c.PoolSize != 4000000 {
		t.Errorf("paper synth config = %+v", c)
	}
}

func TestFacadeSyntheticUniverse(t *testing.T) {
	cfg := mube.ScaledSynthConfig(0.002)
	cfg.NumSources = 60
	cfg.Seed = 5
	cfg.Sig = mube.SignatureConfig{NumMaps: 64}
	res, err := mube.GenerateUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Universe.Len() != 60 {
		t.Fatalf("universe = %d sources", res.Universe.Len())
	}
	m, err := mube.NewMatcher(res.Universe, mube.MatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := m.Match(res.Universe.IDs()[:10], mube.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if !mr.OK || mr.Schema.Len() == 0 {
		t.Errorf("matching 10 synthetic sources found nothing: %+v", mr)
	}
}

func TestFacadeCompoundAndDiscovery(t *testing.T) {
	sig := mube.SignatureConfig{NumMaps: 64}
	u := mube.NewUniverse(sig)
	mustAdd(t, u, mube.UncooperativeSource("events", mube.NewSchema("after date", "before date", "keyword")))
	mustAdd(t, u, mube.UncooperativeSource("listings", mube.NewSchema("date", "keyword")))

	// Discovery.
	idx := mube.BuildDiscoveryIndex(u)
	hits := idx.Search("keyword", 0)
	if len(hits) != 2 {
		t.Fatalf("discovery hits = %v", hits)
	}

	// Compound n:m matching.
	grouping := mube.AutoGroupCompounds(u)
	if len(grouping[0]) != 1 {
		t.Fatalf("auto grouping = %+v", grouping)
	}
	view, err := mube.CompoundTransform(u, grouping)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mube.NewMatcher(view.Universe, mube.MatchConfig{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Match(view.Universe.IDs(), mube.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	corr := view.Project(res.Schema)
	foundNM := false
	for _, c := range corr {
		if c.Cardinality() == "2:1" {
			foundNM = true
		}
	}
	if !foundNM {
		t.Errorf("no 2:1 correspondence found: %+v", corr)
	}
}

// mustAdd adds s to u, failing the test on any error.
func mustAdd(t testing.TB, u *mube.Universe, s *mube.Source) {
	t.Helper()
	if _, err := u.Add(s); err != nil {
		t.Fatal(err)
	}
}
