module mube

go 1.22
